package surface

import (
	"testing"

	"latticesim/internal/circuit"
	"latticesim/internal/hardware"
)

// TestGeneratedCircuitReproducible: building the same spec twice must
// produce byte-identical Stim text (idle-channel grouping is sorted).
func TestGeneratedCircuitReproducible(t *testing.T) {
	spec := MergeSpec{D: 3, Basis: BasisX, HW: hardware.IBM(), P: 1e-3, SpreadIdleNs: 500}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Circuit.Text() != b.Circuit.Text() {
		t.Fatal("identical specs produced different circuits")
	}
}

// TestIdleChannelAccounting: the per-round idle channels must reflect the
// configured cycle time — stretching P' by 150ns should strictly raise
// its data qubits' idle error probabilities.
func TestIdleChannelAccounting(t *testing.T) {
	base := MergeSpec{D: 3, Basis: BasisX, HW: hardware.IBM(), P: 0}
	stretched := base
	stretched.CyclePPrimeNs = hardware.IBM().CycleNs() + 150

	sum := func(spec MergeSpec) float64 {
		res, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, op := range res.Circuit.Ops {
			if op.Type == circuit.OpPauliChannel1 {
				total += (op.Args[0] + op.Args[1] + op.Args[2]) * float64(len(op.Targets))
			}
		}
		return total
	}
	if sum(stretched) <= sum(base) {
		t.Fatal("cycle stretch must add idle error mass")
	}
}

// TestSlackAddsIdleMass: every slack-injecting policy adds idle error
// relative to the ideal circuit, and the total added mass is comparable
// between Passive and Active (the same slack, differently distributed).
func TestSlackAddsIdleMass(t *testing.T) {
	mass := func(lumped, spread, intra float64) float64 {
		spec := MergeSpec{D: 3, Basis: BasisX, HW: hardware.IBM(), P: 0,
			LumpedIdleNs: lumped, SpreadIdleNs: spread, IntraIdleNs: intra}
		res, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, op := range res.Circuit.Ops {
			if op.Type == circuit.OpPauliChannel1 {
				total += (op.Args[0] + op.Args[1] + op.Args[2]) * float64(len(op.Targets))
			}
		}
		return total
	}
	ideal := mass(0, 0, 0)
	passive := mass(1000, 0, 0)
	active := mass(0, 1000, 0)
	intra := mass(0, 0, 1000)
	if passive <= ideal || active <= ideal || intra <= ideal {
		t.Fatal("slack must add idle error mass")
	}
	// Identical total slack: total added probability mass must agree to
	// within the linearization error of the exponential idle model (<1%).
	dp, da := passive-ideal, active-ideal
	if rel := (dp - da) / dp; rel > 0.01 || rel < -0.01 {
		t.Fatalf("Passive (+%g) and Active (+%g) added masses diverge", dp, da)
	}
	// Active-intra hits measure qubits too, so it must add MORE mass.
	if intra <= passive {
		t.Fatal("Active-intra must add idle mass on ancillas as well")
	}
}

// TestMergeRoundsExtra: extra rounds extend the circuit as configured.
func TestMergeRoundsExtra(t *testing.T) {
	a, err := MergeSpec{D: 3, Basis: BasisX, HW: hardware.IBM(), P: 1e-3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := MergeSpec{D: 3, Basis: BasisX, HW: hardware.IBM(), P: 1e-3, RoundsP: 10}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Circuit.NumMeasurements() <= a.Circuit.NumMeasurements() {
		t.Fatal("extra rounds must add measurements")
	}
	if b.MergeRound != 10 {
		t.Fatalf("merge round %d, want 10", b.MergeRound)
	}
}

// TestBasisGeometry: XX merges lay patches side by side, ZZ merges stack
// them, with identical total structure by symmetry.
func TestBasisGeometry(t *testing.T) {
	xx, err := MergeSpec{D: 3, Basis: BasisX, HW: hardware.IBM(), P: 1e-3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	zz, err := MergeSpec{D: 3, Basis: BasisZ, HW: hardware.IBM(), P: 1e-3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if xx.Layout.Rows != 3 || xx.Layout.Cols != 7 {
		t.Fatalf("XX layout %dx%d", xx.Layout.Rows, xx.Layout.Cols)
	}
	if zz.Layout.Rows != 7 || zz.Layout.Cols != 3 {
		t.Fatalf("ZZ layout %dx%d", zz.Layout.Rows, zz.Layout.Cols)
	}
	if xx.Circuit.NumQubits() != zz.Circuit.NumQubits() {
		t.Fatal("transposed geometries must use the same qubit budget")
	}
	if xx.Circuit.NumDetectors() != zz.Circuit.NumDetectors() {
		t.Fatal("transposed geometries must define the same detectors")
	}
}

// TestMemorySpecValidation exercises the error paths.
func TestMemorySpecValidation(t *testing.T) {
	if _, err := (MemorySpec{D: 4, HW: hardware.IBM()}).Build(); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := (MemorySpec{D: 3, HW: hardware.IBM(), CycleNs: 1}).Build(); err == nil {
		t.Error("sub-base cycle accepted")
	}
	if _, err := (MergeSpec{D: 3, HW: hardware.IBM(), P: 0.7}).Build(); err == nil {
		t.Error("absurd noise strength accepted")
	}
	if _, err := (MergeSpec{D: 3, HW: hardware.IBM(), RoundsP: -1}).Build(); err == nil {
		t.Error("negative rounds accepted")
	}
}

// TestScheduleTargets: the zigzag schedules hit each corner exactly once.
func TestScheduleTargets(t *testing.T) {
	lay := NewLayout(3, 3)
	plaqs, err := lay.PlaquettesFor(Region{0, 0, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plaqs {
		seen := map[int32]bool{}
		count := 0
		for k := 0; k < 4; k++ {
			q := pl.ScheduleTarget(k)
			if q < 0 {
				continue
			}
			if seen[q] {
				t.Fatalf("plaquette (%d,%d) touches qubit %d twice", pl.I, pl.J, q)
			}
			seen[q] = true
			count++
		}
		if count != pl.Weight {
			t.Fatalf("plaquette (%d,%d): %d schedule slots for weight %d", pl.I, pl.J, count, pl.Weight)
		}
		if len(pl.Support()) != pl.Weight {
			t.Fatalf("support/weight mismatch on (%d,%d)", pl.I, pl.J)
		}
	}
}
