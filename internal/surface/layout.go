// Package surface generates stabilizer circuits for rotated surface code
// patches and two-patch Lattice Surgery experiments with a per-platform
// timing model and policy-driven idle insertion (paper §2, §6, Fig. 13).
//
// Geometry. Data qubits live on an R×C grid. Plaquettes sit on the dual
// grid (i,j), i∈0..R, j∈0..C, covering the (up to four) data qubits at
// rows i−1..i, cols j−1..j. A plaquette is Z-type iff (i+j) is even.
// Horizontal boundaries (top/bottom) host only X-type weight-2 checks,
// vertical boundaries host only Z-type ones, so the logical Z operator is
// a row of Z's and the logical X a column of X's. For odd R and C this
// yields exactly R·C−1 stabilizers.
package surface

import (
	"fmt"
)

// Basis selects the Lattice Surgery type: BasisX merges along columns and
// measures X_P⊗X_P′ (the paper's "Z-basis lattice surgery" panels);
// BasisZ merges along rows and measures Z_P⊗Z_P′.
type Basis int

// The two merge bases.
const (
	BasisZ Basis = iota
	BasisX
)

// String names the basis by the joint observable it measures.
func (b Basis) String() string {
	if b == BasisX {
		return "XX"
	}
	return "ZZ"
}

// Region is a half-open rectangle of data qubits: rows [R0,R1), cols
// [C0,C1).
type Region struct {
	R0, C0, R1, C1 int
}

// Contains reports whether data position (r, c) lies in the region.
func (rg Region) Contains(r, c int) bool {
	return r >= rg.R0 && r < rg.R1 && c >= rg.C0 && c < rg.C1
}

// Corner order for plaquette supports and CNOT schedules.
const (
	cornerNW = iota
	cornerNE
	cornerSW
	cornerSE
)

// xOrder and zOrder are the standard zigzag CNOT schedules that avoid
// distance-reducing hook errors (Tomita–Svore).
var (
	xOrder = [4]int{cornerNW, cornerNE, cornerSW, cornerSE}
	zOrder = [4]int{cornerNW, cornerSW, cornerNE, cornerSE}
)

// Plaquette is one stabilizer generator instance within a region.
type Plaquette struct {
	I, J    int
	IsX     bool
	Anc     int32
	Corners [4]int32 // data qubit ids in NW,NE,SW,SE order; -1 if absent
	Weight  int
}

// Support returns the present data qubits.
func (p Plaquette) Support() []int32 {
	out := make([]int32, 0, 4)
	for _, q := range p.Corners {
		if q >= 0 {
			out = append(out, q)
		}
	}
	return out
}

// ScheduleTarget returns the data qubit the plaquette interacts with in
// CNOT layer k (0..3), or -1 if it idles that layer.
func (p Plaquette) ScheduleTarget(k int) int32 {
	if p.IsX {
		return p.Corners[xOrder[k]]
	}
	return p.Corners[zOrder[k]]
}

// Layout assigns qubit ids over a bounding grid shared by every phase of
// an experiment, so standalone patches and the merged patch refer to the
// same physical qubits.
type Layout struct {
	Rows, Cols int

	data    [][]int32
	anc     map[[2]int]int32
	nQubits int32
	coords  map[int32][2]float64
}

// NewLayout creates a layout for an R×C data grid. Data qubit ids are
// assigned eagerly; ancilla ids lazily as plaquettes are instantiated.
func NewLayout(rows, cols int) *Layout {
	l := &Layout{
		Rows:   rows,
		Cols:   cols,
		data:   make([][]int32, rows),
		anc:    make(map[[2]int]int32),
		coords: make(map[int32][2]float64),
	}
	for r := 0; r < rows; r++ {
		l.data[r] = make([]int32, cols)
		for c := 0; c < cols; c++ {
			id := l.nQubits
			l.nQubits++
			l.data[r][c] = id
			// Data qubits at odd-odd display coordinates.
			l.coords[id] = [2]float64{float64(2*c + 1), float64(2*r + 1)}
		}
	}
	return l
}

// Data returns the qubit id of data position (r, c).
func (l *Layout) Data(r, c int) int32 { return l.data[r][c] }

// NumQubits returns the number of qubit ids allocated so far.
func (l *Layout) NumQubits() int { return int(l.nQubits) }

// Coords returns display coordinates for the qubit.
func (l *Layout) Coords(q int32) (x, y float64) {
	xy := l.coords[q]
	return xy[0], xy[1]
}

func (l *Layout) ancAt(i, j int) int32 {
	key := [2]int{i, j}
	if id, ok := l.anc[key]; ok {
		return id
	}
	id := l.nQubits
	l.nQubits++
	l.anc[key] = id
	l.coords[id] = [2]float64{float64(2 * j), float64(2 * i)}
	return id
}

// IsXType reports the plaquette type at dual-grid position (i, j).
func IsXType(i, j int) bool { return (i+j)%2 == 1 }

// PlaquettesFor instantiates the stabilizers of the rotated code on the
// given region. Region height and width must be odd.
func (l *Layout) PlaquettesFor(rg Region) ([]Plaquette, error) {
	h, w := rg.R1-rg.R0, rg.C1-rg.C0
	if h < 1 || w < 1 || h%2 == 0 || w%2 == 0 {
		return nil, fmt.Errorf("surface: region %+v must have odd positive dimensions", rg)
	}
	var out []Plaquette
	for i := rg.R0; i <= rg.R1; i++ {
		for j := rg.C0; j <= rg.C1; j++ {
			isX := IsXType(i, j)
			onTop := i == rg.R0
			onBottom := i == rg.R1
			onLeft := j == rg.C0
			onRight := j == rg.C1
			if (onTop || onBottom) && !isX {
				continue
			}
			if (onLeft || onRight) && isX {
				continue
			}
			p := Plaquette{I: i, J: j, IsX: isX, Corners: [4]int32{-1, -1, -1, -1}}
			type rc struct{ r, c int }
			corners := [4]rc{
				{i - 1, j - 1}, // NW
				{i - 1, j},     // NE
				{i, j - 1},     // SW
				{i, j},         // SE
			}
			for k, pos := range corners {
				if rg.Contains(pos.r, pos.c) {
					p.Corners[k] = l.Data(pos.r, pos.c)
					p.Weight++
				}
			}
			if p.Weight < 2 {
				continue // corner positions would be weight-1
			}
			p.Anc = l.ancAt(i, j)
			out = append(out, p)
		}
	}
	if len(out) != h*w-1 {
		return nil, fmt.Errorf("surface: region %+v produced %d stabilizers, want %d", rg, len(out), h*w-1)
	}
	return out, nil
}

// classify compares a merged plaquette set against the standalone sets
// and reports, for each merged plaquette, whether it is unchanged,
// extended (same dual position, larger support) or new.
type plaqChange int

const (
	plaqUnchanged plaqChange = iota
	plaqExtended
	plaqNew
)

func classify(merged []Plaquette, standalone ...[]Plaquette) []plaqChange {
	prev := make(map[[2]int]int) // dual position -> weight
	for _, set := range standalone {
		for _, p := range set {
			prev[[2]int{p.I, p.J}] = p.Weight
		}
	}
	out := make([]plaqChange, len(merged))
	for idx, p := range merged {
		w, ok := prev[[2]int{p.I, p.J}]
		switch {
		case !ok:
			out[idx] = plaqNew
		case w != p.Weight:
			out[idx] = plaqExtended
		default:
			out[idx] = plaqUnchanged
		}
	}
	return out
}
