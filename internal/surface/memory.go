package surface

import (
	"fmt"

	"latticesim/internal/circuit"
	"latticesim/internal/hardware"
	"latticesim/internal/noise"
)

// MemorySpec configures a single-patch memory experiment: initialize a
// logical qubit, run syndrome rounds, read out transversally. It is the
// standard baseline used to validate the code substrate (logical error
// rate falls with distance) and for the extra-rounds study of Fig. 18(b).
type MemorySpec struct {
	D      int
	Basis  Basis // BasisZ: |0⟩_L memory; BasisX: |+⟩_L memory
	HW     hardware.Config
	P      float64
	Rounds int // zero selects d+1

	// CycleNs stretches the syndrome cycle (zero selects the base cycle).
	CycleNs float64
	// SpreadIdleNs is split before every round (Active-style slack, used
	// by single-patch idling studies).
	SpreadIdleNs float64
	// LumpedIdleNs idles once before the final round.
	LumpedIdleNs float64
}

// MemoryResult is the generated circuit plus metadata. The logical
// observable has index 0.
type MemoryResult struct {
	Circuit *circuit.Circuit
	Layout  *Layout
	Rounds  int
}

// Build generates the memory experiment circuit.
func (s MemorySpec) Build() (*MemoryResult, error) {
	if s.D < 3 || s.D%2 == 0 {
		return nil, fmt.Errorf("surface: distance %d must be odd and ≥ 3", s.D)
	}
	if s.Rounds == 0 {
		s.Rounds = s.D + 1
	}
	base := s.HW.CycleNs()
	if s.CycleNs == 0 {
		s.CycleNs = base
	}
	if s.CycleNs < base {
		return nil, fmt.Errorf("surface: cycle %v below hardware base %v", s.CycleNs, base)
	}
	basisIsX := s.Basis == BasisX

	lay := NewLayout(s.D, s.D)
	reg := Region{0, 0, s.D, s.D}
	plaqs, err := lay.PlaquettesFor(reg)
	if err != nil {
		return nil, err
	}
	ph := newPhase("patch", lay, reg, plaqs, s.CycleNs)

	b := &builder{
		spec:        MergeSpec{D: s.D, HW: s.HW, P: s.P, Basis: s.Basis},
		lay:         lay,
		c:           circuit.New(),
		nm:          noise.Model{P: s.P, T1Ns: s.HW.T1Ns, T2Ns: s.HW.T2Ns},
		lastMeas:    make(map[int32]int32),
		lastMeasSet: make(map[int32]struct{}),
		started:     make(map[int32]bool),
	}
	c := b.c
	for q := int32(0); q < int32(lay.NumQubits()); q++ {
		x, y := lay.Coords(q)
		c.QubitCoords(q, x, y)
	}

	c.Reset(ph.dataQubits...)
	c.XError(s.P, ph.dataQubits...)
	if basisIsX {
		c.H(ph.dataQubits...)
		c.Depolarize1(s.P, ph.dataQubits...)
	}

	perRound := s.SpreadIdleNs / float64(s.Rounds)
	b.startAncillas(ph)
	for r := 0; r < s.Rounds; r++ {
		o := roundOpts{mode: detSteady, round: r, basisIsX: basisIsX, preIdleNs: perRound}
		if r == 0 {
			o.mode = detFirstStandalone
		}
		if r == s.Rounds-1 && s.LumpedIdleNs > 0 {
			o.preIdleNs += s.LumpedIdleNs
		}
		b.round(ph, o)
	}

	if basisIsX {
		c.H(ph.dataQubits...)
		c.Depolarize1(s.P, ph.dataQubits...)
	}
	c.XError(s.P, ph.dataQubits...)
	dataRecs := c.Measure(ph.dataQubits...)
	recOf := make(map[int32]int32, len(ph.dataQubits))
	for i, q := range ph.dataQubits {
		recOf[q] = dataRecs[i]
	}
	for _, pl := range plaqs {
		if pl.IsX != basisIsX {
			continue
		}
		recs := []int32{b.lastMeas[pl.Anc]}
		for _, q := range pl.Corners {
			if q >= 0 {
				recs = append(recs, recOf[q])
			}
		}
		coords := []float64{float64(pl.J), float64(pl.I), float64(s.Rounds), checkCoord(pl.IsX)}
		c.Detector(coords, recs...)
	}

	var obsRecs []int32
	if basisIsX {
		for r := 0; r < s.D; r++ {
			obsRecs = append(obsRecs, recOf[lay.Data(r, 0)])
		}
	} else {
		for cc := 0; cc < s.D; cc++ {
			obsRecs = append(obsRecs, recOf[lay.Data(0, cc)])
		}
	}
	c.Observable(0, obsRecs...)

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("surface: generated circuit invalid: %w", err)
	}
	return &MemoryResult{Circuit: c, Layout: lay, Rounds: s.Rounds}, nil
}
