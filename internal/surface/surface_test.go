package surface

import (
	"testing"

	"latticesim/internal/hardware"
	"latticesim/internal/stats"
	"latticesim/internal/tableau"
)

func TestPlaquetteCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		lay := NewLayout(d, d)
		plaqs, err := lay.PlaquettesFor(Region{0, 0, d, d})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if len(plaqs) != d*d-1 {
			t.Fatalf("d=%d: got %d stabilizers, want %d", d, len(plaqs), d*d-1)
		}
		nx, nz := 0, 0
		for _, p := range plaqs {
			if p.IsX {
				nx++
			} else {
				nz++
			}
			if p.Weight != 2 && p.Weight != 4 {
				t.Fatalf("d=%d: plaquette (%d,%d) weight %d", d, p.I, p.J, p.Weight)
			}
		}
		if nx+nz != d*d-1 || nx != nz {
			t.Fatalf("d=%d: nx=%d nz=%d (want equal halves of %d)", d, nx, nz, d*d-1)
		}
	}
}

func TestPlaquetteCountsRectangles(t *testing.T) {
	lay := NewLayout(7, 3)
	plaqs, err := lay.PlaquettesFor(Region{0, 0, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plaqs) != 7*3-1 {
		t.Fatalf("got %d stabilizers, want %d", len(plaqs), 7*3-1)
	}
}

func TestMemoryDetectorsDeterministic(t *testing.T) {
	for _, basis := range []Basis{BasisZ, BasisX} {
		spec := MemorySpec{D: 3, Basis: basis, HW: hardware.Ideal(), P: 0}
		res, err := spec.Build()
		if err != nil {
			t.Fatalf("%v: %v", basis, err)
		}
		for seed := uint64(1); seed <= 5; seed++ {
			run := tableau.Run(res.Circuit, stats.NewRand(seed), false)
			for i, fired := range run.Detectors {
				if fired {
					t.Fatalf("basis %v seed %d: detector %d fired in noiseless run", basis, seed, i)
				}
			}
			for i, flipped := range run.Observables {
				if flipped {
					t.Fatalf("basis %v seed %d: observable %d flipped in noiseless run", basis, seed, i)
				}
			}
		}
	}
}

func TestMergeDetectorsDeterministic(t *testing.T) {
	for _, basis := range []Basis{BasisZ, BasisX} {
		for _, d := range []int{3, 5} {
			spec := MergeSpec{D: d, Basis: basis, HW: hardware.Ideal(), P: 0}
			res, err := spec.Build()
			if err != nil {
				t.Fatalf("%v d=%d: %v", basis, d, err)
			}
			for seed := uint64(1); seed <= 5; seed++ {
				run := tableau.Run(res.Circuit, stats.NewRand(seed), false)
				for i, fired := range run.Detectors {
					if fired {
						t.Fatalf("basis %v d=%d seed %d: detector %d fired in noiseless run", basis, d, seed, i)
					}
				}
				for i, flipped := range run.Observables {
					if flipped {
						t.Fatalf("basis %v d=%d seed %d: observable %d flipped (non-deterministic logical)", basis, d, seed, i)
					}
				}
			}
		}
	}
}

func TestMergeWithPolicyIdlesStillDeterministic(t *testing.T) {
	// Idle channels with zero probability mass are dropped; with
	// probability they only add noise ops, never changing determinism.
	spec := MergeSpec{
		D: 3, Basis: BasisX, HW: hardware.Ideal(), P: 0,
		LumpedIdleNs: 1000, SpreadIdleNs: 500, IntraIdleNs: 300,
		CyclePPrimeNs: hardware.Ideal().CycleNs() + 150,
		RoundsP:       6, RoundsPPrime: 5,
	}
	res, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := tableau.Run(res.Circuit, stats.NewRand(7), false)
	for i, fired := range run.Detectors {
		if fired {
			t.Fatalf("detector %d fired in noiseless run", i)
		}
	}
}

func TestMergeCircuitShape(t *testing.T) {
	spec := MergeSpec{D: 3, Basis: BasisX, HW: hardware.IBM(), P: 1e-3}
	res, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Circuit
	if c.NumObservables() != 2 {
		t.Fatalf("observables = %d, want 2", c.NumObservables())
	}
	// d=3 XX merge: bounding grid 3×7 data, merged patch has 3*7-1
	// stabilizers.
	wantQubits := 3*7 + 3*7 - 1
	if c.NumQubits() != wantQubits {
		t.Fatalf("qubits = %d, want %d", c.NumQubits(), wantQubits)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.MergeRound != res.RoundsP {
		t.Fatalf("merge round %d, want %d", res.MergeRound, res.RoundsP)
	}
}
