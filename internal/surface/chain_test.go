package surface

import (
	"testing"

	"latticesim/internal/dem"
	"latticesim/internal/hardware"
	"latticesim/internal/stats"
	"latticesim/internal/tableau"
)

func TestChainDetectorsDeterministic(t *testing.T) {
	for _, basis := range []Basis{BasisX, BasisZ} {
		for _, k := range []int{2, 3, 4} {
			spec := ChainSpec{D: 3, K: k, Basis: basis, HW: hardware.Ideal(), P: 0}
			res, err := spec.Build()
			if err != nil {
				t.Fatalf("basis %v k=%d: %v", basis, k, err)
			}
			for seed := uint64(1); seed <= 3; seed++ {
				run := tableau.Run(res.Circuit, stats.NewRand(seed), false)
				for i, fired := range run.Detectors {
					if fired {
						t.Fatalf("basis %v k=%d seed %d: detector %d fired", basis, k, seed, i)
					}
				}
				for i, flipped := range run.Observables {
					if flipped {
						t.Fatalf("basis %v k=%d seed %d: observable %d flipped", basis, k, seed, i)
					}
				}
			}
		}
	}
}

func TestChainObservableCount(t *testing.T) {
	res, err := ChainSpec{D: 3, K: 4, Basis: BasisX, HW: hardware.IBM(), P: 1e-3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 3 seam observables + 1 single logical.
	if got := res.Circuit.NumObservables(); got != 4 {
		t.Fatalf("observables = %d, want 4", got)
	}
	if res.JointObs(0) != 0 || res.JointObs(2) != 2 || res.SingleObs() != 3 {
		t.Fatal("observable index helpers wrong")
	}
}

// TestChainK2MatchesMergeSpec: a 2-patch chain must be semantically
// identical to the dedicated two-patch merge generator. Op ordering
// differs slightly (the chain initializes each patch right before its
// rounds), so equality is checked on the canonical detector error model,
// which captures every error mechanism, its probability and its
// detector/observable footprint.
func TestChainK2MatchesMergeSpec(t *testing.T) {
	for _, basis := range []Basis{BasisX, BasisZ} {
		chain, err := ChainSpec{D: 3, K: 2, Basis: basis, HW: hardware.IBM(), P: 1e-3}.Build()
		if err != nil {
			t.Fatal(err)
		}
		merge, err := MergeSpec{D: 3, Basis: basis, HW: hardware.IBM(), P: 1e-3}.Build()
		if err != nil {
			t.Fatal(err)
		}
		cd := dem.FromCircuit(chain.Circuit)
		md := dem.FromCircuit(merge.Circuit)
		if cd.Text() != md.Text() {
			t.Fatalf("basis %v: K=2 chain and MergeSpec detector error models differ", basis)
		}
		if chain.Circuit.NumQubits() != merge.Circuit.NumQubits() ||
			chain.Circuit.NumDetectors() != merge.Circuit.NumDetectors() ||
			chain.Circuit.NumObservables() != merge.Circuit.NumObservables() {
			t.Fatalf("basis %v: structural counts differ", basis)
		}
	}
}

func TestChainPerPatchConfig(t *testing.T) {
	base := hardware.IBM().CycleNs()
	spec := ChainSpec{
		D: 3, K: 3, Basis: BasisX, HW: hardware.IBM(), P: 1e-3,
		CycleNs:      []float64{base, base + 150, base + 325},
		Rounds:       []int{4, 5, 6},
		SpreadIdleNs: []float64{500, 0, 0},
		LumpedIdleNs: []float64{0, 250, 0},
	}
	res, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if res.MergeRound != 6 {
		t.Fatalf("merge round %d, want max pre-merge rounds 6", res.MergeRound)
	}
	if err := res.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := (ChainSpec{D: 3, K: 1, Basis: BasisX, HW: hardware.IBM()}).Build(); err == nil {
		t.Fatal("K=1 must be rejected")
	}
	if _, err := (ChainSpec{D: 4, K: 2, Basis: BasisX, HW: hardware.IBM()}).Build(); err == nil {
		t.Fatal("even distance must be rejected")
	}
	if _, err := (ChainSpec{D: 3, K: 2, Basis: BasisX, HW: hardware.IBM(), CycleNs: []float64{1}}).Build(); err == nil {
		t.Fatal("sub-base cycle must be rejected")
	}
}

func TestChainQubitBudget(t *testing.T) {
	d, k := 3, 3
	res, err := ChainSpec{D: d, K: k, Basis: BasisX, HW: hardware.IBM(), P: 1e-3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	span := k*(d+1) - 1
	want := d*span + d*span - 1 // data + merged-patch ancillas
	if got := res.Circuit.NumQubits(); got != want {
		t.Fatalf("qubits = %d, want %d", got, want)
	}
}
