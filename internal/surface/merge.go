package surface

import (
	"fmt"
	"sort"

	"latticesim/internal/circuit"
	"latticesim/internal/hardware"
	"latticesim/internal/noise"
)

// MergeSpec configures a two-patch Lattice Surgery experiment following
// the paper's protocol (Fig. 13): both patches are initialized and run
// for d+1 rounds (plus any policy-mandated extra rounds), the leading
// patch P absorbs the synchronization slack as idle time according to the
// policy, the patches merge and run d+1 more rounds, and everything is
// read out transversally.
type MergeSpec struct {
	// D is the code distance (odd, ≥ 3).
	D int
	// Basis selects XX or ZZ lattice surgery.
	Basis Basis
	// HW supplies gate latencies and coherence times.
	HW hardware.Config
	// P is the circuit-level depolarizing strength (paper: 1e-3).
	P float64

	// CyclePNs / CyclePPrimeNs are the patches' syndrome cycle times.
	// Zero selects the hardware base cycle. Values above the base cycle
	// add the surplus as per-round idle (emulating deeper syndrome
	// circuits of heterogeneous codes, §7.3).
	CyclePNs      float64
	CyclePPrimeNs float64

	// RoundsP / RoundsPPrime / RoundsMerged are the round counts per
	// phase; zero selects d+1.
	RoundsP      int
	RoundsPPrime int
	RoundsMerged int

	// Policy-derived idle insertion, all applied to patch P only:
	// LumpedIdleNs right before the merge (Passive), SpreadIdleNs split
	// evenly before each pre-merge round (Active), IntraIdleNs split
	// inside the final pre-merge round (Active-intra).
	LumpedIdleNs float64
	SpreadIdleNs float64
	IntraIdleNs  float64
}

// Observable indices produced by merge experiments.
const (
	// ObsJoint is X_P·X_P′ (BasisX) or Z_P·Z_P′ (BasisZ).
	ObsJoint = 0
	// ObsSingle is X_P (BasisX) or Z_P (BasisZ).
	ObsSingle = 1
)

// MergeResult is the generated circuit plus bookkeeping metadata.
type MergeResult struct {
	Circuit *circuit.Circuit
	Layout  *Layout
	Spec    MergeSpec

	// RoundsP, RoundsPPrime and RoundsMerged are the resolved counts.
	RoundsP, RoundsPPrime, RoundsMerged int
	// MergeRound is the detector round coordinate of the first merged
	// round (the Lattice Surgery round, dashed line of Fig. 7(b)).
	MergeRound int
}

func (s *MergeSpec) defaults() error {
	if s.D < 3 || s.D%2 == 0 {
		return fmt.Errorf("surface: distance %d must be odd and ≥ 3", s.D)
	}
	if s.P < 0 || s.P >= 0.5 {
		return fmt.Errorf("surface: depolarizing strength %v out of range", s.P)
	}
	base := s.HW.CycleNs()
	if s.CyclePNs == 0 {
		s.CyclePNs = base
	}
	if s.CyclePPrimeNs == 0 {
		s.CyclePPrimeNs = base
	}
	if s.CyclePNs < base || s.CyclePPrimeNs < base {
		return fmt.Errorf("surface: cycle times (%v, %v) below hardware base %v", s.CyclePNs, s.CyclePPrimeNs, base)
	}
	if s.RoundsP == 0 {
		s.RoundsP = s.D + 1
	}
	if s.RoundsPPrime == 0 {
		s.RoundsPPrime = s.D + 1
	}
	if s.RoundsMerged == 0 {
		s.RoundsMerged = s.D + 1
	}
	if s.RoundsP < 1 || s.RoundsPPrime < 1 || s.RoundsMerged < 1 {
		return fmt.Errorf("surface: round counts must be positive")
	}
	return nil
}

// patchPhase bundles the plaquettes, data qubits and timing of one
// patch during one phase of the experiment.
type patchPhase struct {
	name          string
	region        Region
	plaqs         []Plaquette
	dataQubits    []int32
	participation map[int32]int
	cycleNs       float64
}

func newPhase(name string, l *Layout, rg Region, plaqs []Plaquette, cycleNs float64) *patchPhase {
	ph := &patchPhase{
		name:          name,
		region:        rg,
		plaqs:         plaqs,
		participation: make(map[int32]int),
		cycleNs:       cycleNs,
	}
	for r := rg.R0; r < rg.R1; r++ {
		for c := rg.C0; c < rg.C1; c++ {
			ph.dataQubits = append(ph.dataQubits, l.Data(r, c))
		}
	}
	for _, p := range plaqs {
		for _, q := range p.Corners {
			if q >= 0 {
				ph.participation[q]++
			}
		}
	}
	return ph
}

func (ph *patchPhase) ancillas() []int32 {
	out := make([]int32, len(ph.plaqs))
	for i, p := range ph.plaqs {
		out[i] = p.Anc
	}
	return out
}

func (ph *patchPhase) xAncillas() []int32 {
	var out []int32
	for _, p := range ph.plaqs {
		if p.IsX {
			out = append(out, p.Anc)
		}
	}
	return out
}

// builder accumulates the experiment circuit.
type builder struct {
	spec        MergeSpec
	lay         *Layout
	c           *circuit.Circuit
	nm          noise.Model
	lastMeas    map[int32]int32    // ancilla qubit -> most recent record
	lastMeasSet map[int32]struct{} // ancillas measured at least once
	started     map[int32]bool     // ancilla has been reset at least once
}

// detMode selects the detector emission rule for a round.
type detMode int

const (
	detFirstStandalone detMode = iota // basis-type plaquettes only, single-record
	detSteady                         // all plaquettes, record vs previous
	detFirstMerged                    // unchanged/extended vs previous; new feed ObsJoint
)

// roundOpts carries per-round policy idle insertions.
type roundOpts struct {
	mode      detMode
	round     int          // detector round coordinate
	preIdleNs float64      // slack idle on data before the round starts
	intraNs   float64      // slack idle distributed inside the round (data+ancilla)
	changes   []plaqChange // for detFirstMerged, parallel to plaqs
	basisIsX  bool
	// onNewPlaquette receives the first-round measurement record of each
	// newly-introduced basis-type seam plaquette; merge experiments
	// accumulate these into the joint logical observables.
	onNewPlaquette func(pl Plaquette, rec int32)
}

// idleChannel annotates a Pauli-twirled idle of tau ns on the qubits.
func (b *builder) idleChannel(tauNs float64, qubits ...int32) {
	if tauNs <= 0 || len(qubits) == 0 {
		return
	}
	px, py, pz := b.nm.IdleChannel(tauNs)
	if px+py+pz <= 0 {
		return
	}
	b.c.PauliChannel1(px, py, pz, qubits...)
}

// startAncillas resets ancillas that have not been used before.
func (b *builder) startAncillas(ph *patchPhase) {
	var fresh []int32
	for _, p := range ph.plaqs {
		if !b.started[p.Anc] {
			b.started[p.Anc] = true
			fresh = append(fresh, p.Anc)
		}
	}
	if len(fresh) > 0 {
		b.c.Reset(fresh...)
		b.c.XError(b.spec.P, fresh...)
	}
}

// round emits one syndrome-generation round for the phase.
func (b *builder) round(ph *patchPhase, o roundOpts) {
	c := b.c
	p := b.spec.P
	hw := b.spec.HW
	intraStep := o.intraNs / 5
	intraTargets := append(append([]int32(nil), ph.dataQubits...), ph.ancillas()...)

	if o.preIdleNs > 0 {
		b.idleChannel(o.preIdleNs, ph.dataQubits...)
	}

	// First Hadamard layer on X ancillas.
	if xa := ph.xAncillas(); len(xa) > 0 {
		c.H(xa...)
		c.Depolarize1(p, xa...)
	}
	if intraStep > 0 {
		b.idleChannel(intraStep, intraTargets...)
	}
	c.Tick()

	// Four CNOT layers with the zigzag schedule.
	for k := 0; k < 4; k++ {
		var pairs []int32
		for _, pl := range ph.plaqs {
			d := pl.ScheduleTarget(k)
			if d < 0 {
				continue
			}
			if pl.IsX {
				pairs = append(pairs, pl.Anc, d)
			} else {
				pairs = append(pairs, d, pl.Anc)
			}
		}
		if len(pairs) > 0 {
			c.CNOT(pairs...)
			c.Depolarize2(p, pairs...)
		}
		if intraStep > 0 {
			b.idleChannel(intraStep, intraTargets...)
		}
		c.Tick()
	}

	// Second Hadamard layer.
	if xa := ph.xAncillas(); len(xa) > 0 {
		c.H(xa...)
		c.Depolarize1(p, xa...)
	}
	c.Tick()

	// Measure + reset all ancillas (measurement flip before, reset flip
	// after).
	ancs := ph.ancillas()
	c.XError(p, ancs...)
	recs := c.MeasureReset(ancs...)
	c.XError(p, ancs...)

	// Idle errors accumulated by data qubits over the round: both
	// Hadamard layers, the CNOT layers they sit out, the measure+reset
	// window, and any cycle stretch relative to the hardware base cycle.
	stretch := ph.cycleNs - hw.CycleNs()
	byIdle := make(map[float64][]int32)
	for _, q := range ph.dataQubits {
		idle := 2*hw.Gate1Ns + float64(4-ph.participation[q])*hw.Gate2Ns +
			hw.ReadoutNs + hw.ResetNs + stretch
		byIdle[idle] = append(byIdle[idle], q)
	}
	emitIdleGroups(b, byIdle)
	// Ancilla idle: layers where a weight<4 plaquette has no CNOT, plus
	// the Hadamard layers for Z ancillas, plus cycle stretch.
	ancIdle := make(map[float64][]int32)
	for _, pl := range ph.plaqs {
		idle := float64(4-pl.Weight)*hw.Gate2Ns + stretch
		if !pl.IsX {
			idle += 2 * hw.Gate1Ns
		}
		if idle > 0 {
			ancIdle[idle] = append(ancIdle[idle], pl.Anc)
		}
	}
	emitIdleGroups(b, ancIdle)

	// Detectors.
	for i, pl := range ph.plaqs {
		rec := recs[i]
		prev := b.lastMeas[pl.Anc]
		_, hasPrev := b.lastMeasSet[pl.Anc]
		coords := []float64{float64(pl.J), float64(pl.I), float64(o.round), checkCoord(pl.IsX)}
		switch o.mode {
		case detFirstStandalone:
			if pl.IsX == o.basisIsX {
				b.c.Detector(coords, rec)
			}
		case detSteady:
			if hasPrev {
				b.c.Detector(coords, rec, prev)
			}
		case detFirstMerged:
			switch o.changes[i] {
			case plaqUnchanged, plaqExtended:
				if hasPrev {
					b.c.Detector(coords, rec, prev)
				}
			case plaqNew:
				if pl.IsX == o.basisIsX && o.onNewPlaquette != nil {
					o.onNewPlaquette(pl, rec)
				}
			}
		}
		b.lastMeas[pl.Anc] = rec
		b.lastMeasSet[pl.Anc] = struct{}{}
	}
	c.Tick()
}

// emitIdleGroups emits one idle channel per distinct duration, in sorted
// order so generated circuits are byte-for-byte reproducible.
func emitIdleGroups(b *builder, groups map[float64][]int32) {
	durations := make([]float64, 0, len(groups))
	for d := range groups {
		durations = append(durations, d)
	}
	sort.Float64s(durations)
	for _, d := range durations {
		b.idleChannel(d, groups[d]...)
	}
}

func checkCoord(isX bool) float64 {
	if isX {
		return circuit.CheckX
	}
	return circuit.CheckZ
}

// Build generates the experiment circuit.
func (s MergeSpec) Build() (*MergeResult, error) {
	if err := s.defaults(); err != nil {
		return nil, err
	}
	d := s.D
	basisIsX := s.Basis == BasisX

	var lay *Layout
	var regP, regPPrime, regMerged Region
	if basisIsX {
		// Horizontal merge: P | buffer column | P′.
		lay = NewLayout(d, 2*d+1)
		regP = Region{0, 0, d, d}
		regPPrime = Region{0, d + 1, d, 2*d + 1}
		regMerged = Region{0, 0, d, 2*d + 1}
	} else {
		// Vertical merge: P over buffer row over P′.
		lay = NewLayout(2*d+1, d)
		regP = Region{0, 0, d, d}
		regPPrime = Region{d + 1, 0, 2*d + 1, d}
		regMerged = Region{0, 0, 2*d + 1, d}
	}

	plaqsP, err := lay.PlaquettesFor(regP)
	if err != nil {
		return nil, err
	}
	plaqsPPrime, err := lay.PlaquettesFor(regPPrime)
	if err != nil {
		return nil, err
	}
	plaqsMerged, err := lay.PlaquettesFor(regMerged)
	if err != nil {
		return nil, err
	}
	changes := classify(plaqsMerged, plaqsP, plaqsPPrime)

	phP := newPhase("P", lay, regP, plaqsP, s.CyclePNs)
	phPPrime := newPhase("P'", lay, regPPrime, plaqsPPrime, s.CyclePPrimeNs)
	mergedCycle := s.CyclePNs
	if s.CyclePPrimeNs > mergedCycle {
		mergedCycle = s.CyclePPrimeNs
	}
	phM := newPhase("merged", lay, regMerged, plaqsMerged, mergedCycle)

	b := &builder{
		spec:        s,
		lay:         lay,
		c:           circuit.New(),
		nm:          noise.Model{P: s.P, T1Ns: s.HW.T1Ns, T2Ns: s.HW.T2Ns},
		lastMeas:    make(map[int32]int32),
		lastMeasSet: make(map[int32]struct{}),
		started:     make(map[int32]bool),
	}
	c := b.c

	for q := int32(0); q < int32(lay.NumQubits()); q++ {
		x, y := lay.Coords(q)
		c.QubitCoords(q, x, y)
	}

	// Initialize patch data (|0⟩ for ZZ, |+⟩ for XX).
	initData := func(ph *patchPhase) {
		c.Reset(ph.dataQubits...)
		c.XError(s.P, ph.dataQubits...)
		if basisIsX {
			c.H(ph.dataQubits...)
			c.Depolarize1(s.P, ph.dataQubits...)
		}
	}
	initData(phP)
	initData(phPPrime)

	// Pre-merge rounds for P (with policy idles) and P′.
	perRound := 0.0
	if s.RoundsP > 0 {
		perRound = s.SpreadIdleNs / float64(s.RoundsP)
	}
	b.startAncillas(phP)
	for r := 0; r < s.RoundsP; r++ {
		o := roundOpts{mode: detSteady, round: r, basisIsX: basisIsX, preIdleNs: perRound}
		if r == 0 {
			o.mode = detFirstStandalone
		}
		if r == s.RoundsP-1 {
			o.intraNs = s.IntraIdleNs
		}
		b.round(phP, o)
	}
	b.startAncillas(phPPrime)
	for r := 0; r < s.RoundsPPrime; r++ {
		o := roundOpts{mode: detSteady, round: r, basisIsX: basisIsX}
		if r == 0 {
			o.mode = detFirstStandalone
		}
		b.round(phPPrime, o)
	}

	// The Passive policy's lumped wait right before Lattice Surgery.
	if s.LumpedIdleNs > 0 {
		b.idleChannel(s.LumpedIdleNs, phP.dataQubits...)
	}

	// Buffer initialization: |0⟩ for XX merges, |+⟩ for ZZ merges, so the
	// extended seam checks stay deterministic across the merge.
	var buffer []int32
	if basisIsX {
		for r := 0; r < d; r++ {
			buffer = append(buffer, lay.Data(r, d))
		}
	} else {
		for cc := 0; cc < d; cc++ {
			buffer = append(buffer, lay.Data(d, cc))
		}
	}
	c.Reset(buffer...)
	c.XError(s.P, buffer...)
	if !basisIsX {
		c.H(buffer...)
		c.Depolarize1(s.P, buffer...)
	}

	// Merged rounds.
	preRounds := s.RoundsP
	if s.RoundsPPrime > preRounds {
		preRounds = s.RoundsPPrime
	}
	mergeRound := preRounds
	var jointRecs []int32
	b.startAncillas(phM)
	for r := 0; r < s.RoundsMerged; r++ {
		o := roundOpts{mode: detSteady, round: preRounds + r, basisIsX: basisIsX}
		if r == 0 {
			o.mode = detFirstMerged
			o.changes = changes
			o.onNewPlaquette = func(_ Plaquette, rec int32) {
				jointRecs = append(jointRecs, rec)
			}
		}
		b.round(phM, o)
	}
	c.Observable(ObsJoint, jointRecs...)

	// Transversal readout of all data qubits in the experiment basis.
	allData := phM.dataQubits
	if basisIsX {
		c.H(allData...)
		c.Depolarize1(s.P, allData...)
	}
	c.XError(s.P, allData...)
	dataRecs := c.Measure(allData...)
	recOf := make(map[int32]int32, len(allData))
	for i, q := range allData {
		recOf[q] = dataRecs[i]
	}

	// Reconstructed final-round detectors for basis-type plaquettes.
	finalRound := preRounds + s.RoundsMerged
	for _, pl := range plaqsMerged {
		if pl.IsX != basisIsX {
			continue
		}
		recs := []int32{b.lastMeas[pl.Anc]}
		for _, q := range pl.Corners {
			if q >= 0 {
				recs = append(recs, recOf[q])
			}
		}
		coords := []float64{float64(pl.J), float64(pl.I), float64(finalRound), checkCoord(pl.IsX)}
		c.Detector(coords, recs...)
	}

	// Single-patch logical observable: X_P = column 0 (BasisX) or
	// Z_P = row 0 (BasisZ) of patch P.
	var singleRecs []int32
	if basisIsX {
		for r := 0; r < d; r++ {
			singleRecs = append(singleRecs, recOf[lay.Data(r, 0)])
		}
	} else {
		for cc := 0; cc < d; cc++ {
			singleRecs = append(singleRecs, recOf[lay.Data(0, cc)])
		}
	}
	c.Observable(ObsSingle, singleRecs...)

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("surface: generated circuit invalid: %w", err)
	}
	return &MergeResult{
		Circuit:      c,
		Layout:       lay,
		Spec:         s,
		RoundsP:      s.RoundsP,
		RoundsPPrime: s.RoundsPPrime,
		RoundsMerged: s.RoundsMerged,
		MergeRound:   mergeRound,
	}, nil
}
