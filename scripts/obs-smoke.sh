#!/bin/sh
# obs-smoke — end-to-end check of the fleet observability surface
# (DESIGN.md §16) against real processes: a coordinator and two worker
# nodes run a campaign, one node is SIGKILLed mid-unit, and the script
# asserts what a fleet operator would rely on:
#
#   * GET /metrics on the coordinator is live *mid-campaign* with a
#     non-zero latticesim_queue_depth, and after the run shows the
#     forced lease expiry and a store hit from a resubmission;
#   * GET /metrics on a worker node (-metrics-addr) reports its unit
#     and Monte Carlo shard series;
#   * one trace ID stamps the campaign's spans in the coordinator's
#     -log-json sink AND the surviving node's unit spans in its own;
#   * `latticesim status` renders the dashboard against the live fleet;
#   * -debug-addr serves pprof.
#
# Usage: scripts/obs-smoke.sh   (or `make obs-smoke`)
# Env:   BIN  — prebuilt latticesim binary (default: build into tmpdir)
#        KEEP — set non-empty to keep the tmpdir for inspection
set -eu

ADDR=127.0.0.1:8653
WADDR=127.0.0.1:8654
PPROF=127.0.0.1:8655
DIR=$(mktemp -d)

SERVE_PID=; DOOMED_PID=; SURVIVOR_PID=; POLL_PID=
cleanup() {
  kill $SERVE_PID $DOOMED_PID $SURVIVOR_PID $POLL_PID 2>/dev/null || true
  if [ -n "${KEEP:-}" ]; then echo "obs-smoke: artifacts kept in $DIR"; else rm -rf "$DIR"; fi
}
trap cleanup EXIT

if [ -z "${BIN:-}" ]; then
  BIN=$DIR/latticesim
  go build -o "$BIN" ./cmd/latticesim
fi

fail() { echo "obs-smoke FAIL: $*" >&2; exit 1; }

# Coordinator: executes nothing itself, short leases, stealing disabled
# so the killed node's unit can come back only via lease expiry — which
# pins latticesim_lease_expiries_total to a non-zero value.
"$BIN" serve -addr "$ADDR" -data "$DIR/data" -workers 0 -lease 2s \
  -steal-age=-1s -log-json "$DIR/coord.ndjson" -debug-addr "$PPROF" &
SERVE_PID=$!
for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null || fail "coordinator never came up"

"$BIN" worker -server "http://$ADDR" -name doomed -poll 100ms &
DOOMED_PID=$!
"$BIN" worker -server "http://$ADDR" -name survivor -poll 100ms \
  -metrics-addr "$WADDR" -log-json "$DIR/worker.ndjson" &
SURVIVOR_PID=$!
for i in $(seq 1 50); do
  n=$(curl -sf "http://$ADDR/v1/workers" | grep -o '"id"' | wc -l)
  [ "$n" -eq 2 ] && break
  sleep 0.2
done
[ "$n" -eq 2 ] || fail "expected 2 registered workers, saw $n"

# Mid-campaign watcher: scrape the coordinator until the queue is
# visibly non-empty AND both nodes hold leases, then SIGKILL the doomed
# node while it provably owns a unit. Also snapshot the worker's own
# /metrics mid-run.
(
  for i in $(seq 1 600); do
    m=$(curl -sf "http://$ADDR/metrics" || true)
    depth=$(echo "$m" | awk '/^latticesim_queue_depth /{print int($2)}')
    leases=$(echo "$m" | awk '/^latticesim_active_leases /{print int($2)}')
    if [ "${depth:-0}" -gt 0 ] && [ "${leases:-0}" -ge 2 ]; then
      echo "${depth}" > "$DIR/qdepth"
      curl -sf "http://$WADDR/metrics" > "$DIR/worker_midrun.txt" || true
      kill -9 $DOOMED_PID 2>/dev/null || true
      exit 0
    fi
    sleep 0.05
  done
  exit 1
) &
POLL_PID=$!

"$BIN" submit campaign -server "http://$ADDR" \
  -policies Passive,Active -tau 250,500,750,1000 -shots 400000 \
  -batch-points 1 -retry \
  > "$DIR/campaign.json" 2> "$DIR/campaign.err"
cat "$DIR/campaign.err"
wait $POLL_PID || fail "never observed a non-empty queue with two active leases mid-campaign"
POLL_PID=

[ -s "$DIR/qdepth" ] || fail "mid-campaign latticesim_queue_depth never went above 0"
echo "obs-smoke: mid-campaign queue depth was $(cat "$DIR/qdepth")"
grep -q '^# TYPE latticesim_worker_units_leased_total counter' "$DIR/worker_midrun.txt" \
  || fail "mid-campaign worker scrape missing unit counters"

# Resubmission of the identical campaign is answered by the store.
"$BIN" submit campaign -server "http://$ADDR" \
  -policies Passive,Active -tau 250,500,750,1000 -shots 400000 \
  -batch-points 1 \
  > "$DIR/campaign2.json" 2>/dev/null
cmp "$DIR/campaign.json" "$DIR/campaign2.json" || fail "resubmitted campaign bytes differ"

metric() { # metric <file> <name> -> integer value (0 if absent)
  awk -v n="$2" '$1 == n {print int($2); found=1} END {if (!found) print 0}' "$1"
}
curl -sf "http://$ADDR/metrics" > "$DIR/coord_metrics.txt" || fail "final coordinator scrape failed"
[ "$(metric "$DIR/coord_metrics.txt" latticesim_lease_expiries_total)" -ge 1 ] \
  || fail "lease_expiries_total still 0 after SIGKILLing a node holding a lease"
[ "$(metric "$DIR/coord_metrics.txt" latticesim_store_hits_total)" -ge 1 ] \
  || fail "store_hits_total still 0 after resubmitting a finished campaign"
[ "$(metric "$DIR/coord_metrics.txt" latticesim_integrity_failures_total)" -eq 0 ] \
  || fail "integrity failures during the smoke"

curl -sf "http://$WADDR/metrics" > "$DIR/worker_metrics.txt" || fail "worker scrape failed"
[ "$(metric "$DIR/worker_metrics.txt" latticesim_worker_units_completed_total)" -ge 1 ] \
  || fail "survivor completed no units per its own registry"
[ "$(metric "$DIR/worker_metrics.txt" latticesim_shard_duration_seconds_count)" -ge 1 ] \
  || fail "worker registry missing Monte Carlo shard observations"

# One trace ID end to end: the campaign's spans on the coordinator and
# the surviving node's unit spans carry the same 32-hex ID.
TRACE=$(grep '"name":"campaign"' "$DIR/coord.ndjson" | head -n 1 \
  | sed 's/.*"trace":"\([0-9a-f]\{32\}\)".*/\1/')
[ -n "$TRACE" ] || fail "no campaign span in the coordinator's -log-json sink"
grep '"phase":"end"' "$DIR/coord.ndjson" | grep '"name":"campaign"' \
  | grep "$TRACE" | grep -q '"outcome":"done"' \
  || fail "campaign trace $TRACE has no done end-span"
units=$(grep '"name":"unit"' "$DIR/worker.ndjson" | grep '"phase":"end"' | grep -c "$TRACE" || true)
[ "$units" -ge 1 ] || fail "survivor's span sink has no unit end-spans with trace $TRACE"
echo "obs-smoke: trace $TRACE spans $units surviving-node units"

# The status dashboard renders against the live fleet.
"$BIN" status "$ADDR" > "$DIR/status.txt"
cat "$DIR/status.txt"
grep -q "survivor" "$DIR/status.txt" || fail "status dashboard missing the surviving node"

# pprof on its own listener.
curl -sf "http://$PPROF/debug/pprof/" >/dev/null || fail "pprof endpoint not serving"

kill $SURVIVOR_PID 2>/dev/null || true
kill $SERVE_PID
SERVE_PID=; SURVIVOR_PID=; DOOMED_PID=
echo "obs-smoke PASS"
