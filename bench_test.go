package latticesim

// One benchmark per table and figure of the paper (see DESIGN.md §4 for
// the experiment index). Each benchmark regenerates its artifact through
// the same runner the CLI uses, at benchmark-friendly scale: the paper's
// full settings are reproduced with
//
//	go run ./cmd/latticesim -shots 100000000 -maxd 15 all
//
// The microbenchmarks at the bottom measure the substrate primitives
// (frame sampling, decoding, DEM extraction, planning).

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"latticesim/internal/core"
	"latticesim/internal/decoder"
	"latticesim/internal/dem"
	"latticesim/internal/exp"
	"latticesim/internal/frame"
	"latticesim/internal/hardware"
	"latticesim/internal/microarch"
	"latticesim/internal/stats"
	"latticesim/internal/surface"
)

// benchOpts keeps per-iteration cost low; benchmarks measure the cost of
// regenerating each artifact at reduced scale.
var benchOpts = exp.Options{Shots: 2000, MaxD: 3, Seed: 7}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1cRepetitionIdle(b *testing.B)     { runExperiment(b, "fig1c") }
func BenchmarkFig1dNormalizedTCount(b *testing.B)   { runExperiment(b, "fig1d") }
func BenchmarkFig3cSyncRate(b *testing.B)           { runExperiment(b, "fig3c") }
func BenchmarkFig4aCultivationSlack(b *testing.B)   { runExperiment(b, "fig4a") }
func BenchmarkFig4bQLDPCSlack(b *testing.B)         { runExperiment(b, "fig4b") }
func BenchmarkFig6DDFidelity(b *testing.B)          { runExperiment(b, "fig6") }
func BenchmarkFig7aWeightProfile(b *testing.B)      { runExperiment(b, "fig7a") }
func BenchmarkFig7bHammingWeight(b *testing.B)      { runExperiment(b, "fig7b") }
func BenchmarkFig10Diophantine(b *testing.B)        { runExperiment(b, "fig10") }
func BenchmarkFig11HybridGrid(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig14ActiveVsPassive(b *testing.B)    { runExperiment(b, "fig14") }
func BenchmarkFig15IdealActivePassive(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16WorkloadLER(b *testing.B)        { runExperiment(b, "fig16") }
func BenchmarkFig17ActiveIntra(b *testing.B)        { runExperiment(b, "fig17") }
func BenchmarkFig18aSpreadRounds(b *testing.B)      { runExperiment(b, "fig18a") }
func BenchmarkFig18bExtraRounds(b *testing.B)       { runExperiment(b, "fig18b") }
func BenchmarkFig19PolicyComparison(b *testing.B)   { runExperiment(b, "fig19") }
func BenchmarkFig20SyncEngine(b *testing.B)         { runExperiment(b, "fig20") }
func BenchmarkFig21NeutralAtom(b *testing.B)        { runExperiment(b, "fig21") }
func BenchmarkFig22DecoderSpeedup(b *testing.B)     { runExperiment(b, "fig22") }
func BenchmarkTable1ErrorCounts(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkTable2PolicySummary(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkTable4MeanReductions(b *testing.B)    { runExperiment(b, "table4") }
func BenchmarkTable5NeutralAtomRounds(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkExtChain(b *testing.B)                { runExperiment(b, "ext-chain") }
func BenchmarkExtDropout(b *testing.B)              { runExperiment(b, "ext-dropout") }
func BenchmarkExtAblation(b *testing.B)             { runExperiment(b, "ext-ablation") }

// --- substrate microbenchmarks ---

func buildMerge(b *testing.B, d int) *surface.MergeResult {
	b.Helper()
	res, err := surface.MergeSpec{D: d, Basis: surface.BasisX, HW: hardware.IBM(), P: 1e-3}.Build()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFrameSampling measures raw detector-sampling throughput
// (shots/op = 64) of the interpreting sampler.
func BenchmarkFrameSampling(b *testing.B) {
	for _, d := range []int{3, 5, 7} {
		res := buildMerge(b, d)
		s := frame.NewSampler(res.Circuit)
		rng := stats.NewRand(1)
		b.Run(sizeName(d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.SampleBatch(rng, 64)
			}
			b.ReportMetric(64*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}

// BenchmarkFrameSamplingCompiled measures the compiled-plan sampler on
// the same circuits; the ratio to BenchmarkFrameSampling is the win from
// instruction fusion and precomputed noise constants alone.
func BenchmarkFrameSamplingCompiled(b *testing.B) {
	for _, d := range []int{3, 5, 7} {
		res := buildMerge(b, d)
		s := frame.Compile(res.Circuit).NewSampler()
		rng := stats.NewRand(1)
		b.Run(sizeName(d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.SampleBatch(rng, 64)
			}
			b.ReportMetric(64*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}

// BenchmarkFrameSamplingWide measures the wide-word sampler — groups of
// frame.WideWords 64-shot batches per pass over the compiled plan — on
// the same circuits as BenchmarkFrameSamplingCompiled; the ratio is the
// win from amortizing plan walking across lanes.
func BenchmarkFrameSamplingWide(b *testing.B) {
	group := []int{64, 64, 64, 64}[:frame.WideWords]
	for _, d := range []int{3, 5, 7} {
		res := buildMerge(b, d)
		s := frame.Compile(res.Circuit).NewWideSampler()
		rng := stats.NewRand(1)
		b.Run(sizeName(d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.SampleGroup(rng, group)
			}
			b.ReportMetric(float64(64*len(group))*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}

// BenchmarkBatchExtraction measures grouped sparse extraction — the
// Extract call producing the flat SparseBatch the decoder layer consumes
// whole — on the same low-error d=7 batch as BenchmarkExtraction.
func BenchmarkBatchExtraction(b *testing.B) {
	res, err := surface.MemorySpec{D: 7, Basis: surface.BasisZ, HW: hardware.IBM(), P: 1e-4}.Build()
	if err != nil {
		b.Fatal(err)
	}
	s := frame.Compile(res.Circuit).NewSampler()
	batch := s.SampleBatch(stats.NewRand(1), 64)
	ext := frame.NewExtractor()
	var sp frame.SparseBatch
	b.Run("grouped/d7-p=0.0001", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ext.Extract(batch, &sp)
		}
		b.ReportMetric(64*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
	})
}

// BenchmarkPredecodedDecode compares bare union-find against the
// predecoder-fronted decoder on sampled d=7 memory syndromes at the
// paper's operating point and below threshold — the workloads the
// predecoder's weight gate is tuned on. Both decode the identical
// per-shot defect stream; the ratio is the decomposition win.
func BenchmarkPredecodedDecode(b *testing.B) {
	for _, p := range []float64{1e-3, 1e-4} {
		res, err := surface.MemorySpec{D: 7, Basis: surface.BasisZ, HW: hardware.IBM(), P: p}.Build()
		if err != nil {
			b.Fatal(err)
		}
		m := dem.FromCircuit(res.Circuit)
		g := decoder.BuildGraph(m)
		// Pool non-empty syndromes from many batches, the mix the Monte
		// Carlo loop actually decodes (clean batches never reach Decode).
		s := frame.Compile(res.Circuit).NewSampler()
		ext := frame.NewExtractor()
		rng := stats.NewRand(1)
		var pool [][]int
		for len(pool) < 512 {
			ext.ForEachShot(s.SampleBatch(rng, 64), func(_ int, defects []int, _ uint64) {
				if len(defects) > 0 {
					pool = append(pool, append([]int(nil), defects...))
				}
			})
		}
		pre := decoder.NewPredecoder(g)
		for _, variant := range []string{"unionfind", "predecoded"} {
			var dec decoder.Decoder = decoder.NewUnionFind(g)
			if variant == "predecoded" {
				dec = pre.NewDecoder(decoder.NewUnionFind(g))
			}
			for _, defects := range pool {
				dec.Decode(defects) // reach the scratch high-water mark
			}
			b.Run(fmt.Sprintf("%s/d7-p=%g", variant, p), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dec.Decode(pool[i%len(pool)])
				}
			})
		}
	}
}

// BenchmarkExtraction compares the dense per-shot scan with the sparse
// transpose extractor on a low-error-rate d=7 memory batch — the regime
// where almost no detectors fire and the dense O(64 × detectors) scan is
// pure overhead.
func BenchmarkExtraction(b *testing.B) {
	res, err := surface.MemorySpec{D: 7, Basis: surface.BasisZ, HW: hardware.IBM(), P: 1e-4}.Build()
	if err != nil {
		b.Fatal(err)
	}
	s := frame.Compile(res.Circuit).NewSampler()
	batch := s.SampleBatch(stats.NewRand(1), 64)
	sink := 0
	b.Run("dense/d7-p=0.0001", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			batch.ForEachShot(func(_ int, defects []int, _ uint64) { sink += len(defects) })
		}
		b.ReportMetric(64*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
	})
	b.Run("sparse/d7-p=0.0001", func(b *testing.B) {
		ext := frame.NewExtractor()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ext.ForEachShot(batch, func(_ int, defects []int, _ uint64) { sink += len(defects) })
		}
		b.ReportMetric(64*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
	})
	_ = sink
}

// BenchmarkLUTDecode measures steady-state LUT decoding; allocs/op must
// stay 0 (the scratch-keyed map probe).
func BenchmarkLUTDecode(b *testing.B) {
	res, err := surface.MergeSpec{D: 3, Basis: surface.BasisX, HW: hardware.IBM(), P: 1e-3}.Build()
	if err != nil {
		b.Fatal(err)
	}
	m := dem.FromCircuit(res.Circuit)
	lut := decoder.BuildLUT(m, 3<<10, 8)
	pool := decodePool(b, res)
	lut.Decode(pool[0]) // warm the key scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lut.Decode(pool[i%len(pool)])
	}
}

// BenchmarkUnionFindDecodeSteady measures steady-state union-find
// decoding after scratch warm-up; allocs/op must stay 0.
func BenchmarkUnionFindDecodeSteady(b *testing.B) {
	for _, d := range []int{3, 5, 7} {
		res := buildMerge(b, d)
		m := dem.FromCircuit(res.Circuit)
		g := decoder.BuildGraph(m)
		uf := decoder.NewUnionFind(g)
		pool := decodePool(b, res)
		for _, defects := range pool {
			uf.Decode(defects) // reach the scratch high-water mark
		}
		b.Run(sizeName(d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				uf.Decode(pool[i%len(pool)])
			}
		})
	}
}

// BenchmarkPipelineRunLowP is the acceptance benchmark of ISSUE 3: the
// end-to-end sample→extract→decode loop at the paper's operating point
// (p=1e-3) and below threshold (p=1e-4), where the zero-syndrome and
// sparse-extraction fast paths carry the load. workers=1 isolates the
// per-shot cost from parallel speedup.
func BenchmarkPipelineRunLowP(b *testing.B) {
	const shots = 40960
	for _, p := range []float64{1e-3, 1e-4} {
		res, err := surface.MemorySpec{D: 7, Basis: surface.BasisZ, HW: hardware.IBM(), P: p}.Build()
		if err != nil {
			b.Fatal(err)
		}
		pl, err := exp.NewPipeline(res.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		pl.Workers = 1
		b.Run(fmt.Sprintf("p=%g/workers=1", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := pl.Run(shots, 1)
				if r.Shots != shots {
					b.Fatalf("shots %d", r.Shots)
				}
			}
			b.ReportMetric(float64(shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}

// decodePool samples one 64-shot batch and returns its defect sets.
func decodePool(b *testing.B, res *surface.MergeResult) [][]int {
	b.Helper()
	s := frame.NewSampler(res.Circuit)
	var pool [][]int
	batch := s.SampleBatch(stats.NewRand(1), 64)
	batch.ForEachShot(func(_ int, defects []int, _ uint64) {
		pool = append(pool, append([]int(nil), defects...))
	})
	if len(pool) == 0 {
		b.Fatal("empty decode pool")
	}
	return pool
}

// BenchmarkDEMExtraction measures reverse error-propagation time.
func BenchmarkDEMExtraction(b *testing.B) {
	for _, d := range []int{3, 5, 7} {
		res := buildMerge(b, d)
		b.Run(sizeName(d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dem.FromCircuit(res.Circuit)
			}
		})
	}
}

// BenchmarkUnionFindDecode measures per-shot decode time on sampled
// syndromes.
func BenchmarkUnionFindDecode(b *testing.B) {
	for _, d := range []int{3, 5, 7} {
		res := buildMerge(b, d)
		m := dem.FromCircuit(res.Circuit)
		g := decoder.BuildGraph(m)
		uf := decoder.NewUnionFind(g)
		s := frame.NewSampler(res.Circuit)
		rng := stats.NewRand(1)
		// Pre-sample a pool of defect sets.
		var pool [][]int
		batch := s.SampleBatch(rng, 64)
		batch.ForEachShot(func(_ int, defects []int, _ uint64) {
			pool = append(pool, append([]int(nil), defects...))
		})
		b.Run(sizeName(d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				uf.Decode(pool[i%len(pool)])
			}
		})
	}
}

// BenchmarkCircuitGeneration measures lattice-surgery circuit build time.
func BenchmarkCircuitGeneration(b *testing.B) {
	for _, d := range []int{3, 5, 7, 9} {
		b.Run(sizeName(d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buildMerge(b, d)
			}
		})
	}
}

// BenchmarkPipelineRunWorkers measures the full sample→decode Monte
// Carlo loop on the acceptance workload of EXPERIMENTS.md §9 — a
// 40960-shot distance-7 memory experiment — sequential (workers=1)
// against the full worker pool (workers=NumCPU). Shot-sharded execution
// is bit-identical across worker counts, so the two sub-benchmarks do
// the same work and their ns/op ratio is the parallel speedup.
func BenchmarkPipelineRunWorkers(b *testing.B) {
	const shots = 40960
	res, err := surface.MemorySpec{D: 7, Basis: surface.BasisZ, HW: hardware.IBM(), P: 1e-3}.Build()
	if err != nil {
		b.Fatal(err)
	}
	pl, err := exp.NewPipeline(res.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		pl.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := pl.Run(shots, 1)
				if r.Shots != shots {
					b.Fatalf("shots %d", r.Shots)
				}
			}
			b.ReportMetric(float64(shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}

// BenchmarkFrameSamplingParallel measures sharded sampler throughput
// with one private sampler per worker, the substrate primitive behind
// BenchmarkPipelineRunWorkers (compare against BenchmarkFrameSampling
// for the single-stream baseline).
func BenchmarkFrameSamplingParallel(b *testing.B) {
	for _, d := range []int{3, 5, 7} {
		res := buildMerge(b, d)
		pl, err := exp.NewPipeline(res.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		pl.Workers = runtime.NumCPU()
		// One 4096-shot shard per worker, so the whole pool is busy.
		shots := runtime.NumCPU() * 4096
		b.Run(sizeName(d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// RoundWeights is pure sampling (no decode): one
				// CountDetectorFires pass per shard on the pool.
				pl.RoundWeights(shots, 1)
			}
			b.ReportMetric(float64(shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}

// BenchmarkPlanSyncK measures k-patch synchronization planning on the
// Fig. 12 engine (the Fig. 20 right panel at microbenchmark precision).
func BenchmarkPlanSyncK(b *testing.B) {
	cycles := []int64{1000, 1150, 1325, 1725}
	for _, k := range []int{2, 10, 50} {
		eng := microarch.NewEngine(k)
		ids := make([]int, k)
		for i := 0; i < k; i++ {
			id, err := eng.Register(cycles[i%len(cycles)])
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = id
		}
		eng.Tick(12345)
		b.Run(sizeName(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.PlanSync(ids, core.Hybrid, 400, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHybridSolver measures the Eq. 2 iterative solve.
func BenchmarkHybridSolver(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.SolveHybrid(1000, 1325, int64(i%1300)+100, 400, 5)
	}
}

func sizeName(n int) string {
	const digits = "0123456789"
	if n < 10 {
		return "d" + digits[n:n+1]
	}
	return "d" + digits[n/10:n/10+1] + digits[n%10:n%10+1]
}
