// Package latticesim is a Go reproduction of "Synchronization for
// Fault-Tolerant Quantum Computers" (Maurya & Tannu, ISCA 2025): a
// stabilizer-circuit generator and sampler for surface code Lattice
// Surgery, together with the paper's synchronization policies (Passive,
// Active, Active-intra, Extra Rounds, Hybrid) and the control
// microarchitecture that applies them at runtime.
//
// The package is a facade over the internal implementation:
//
//   - build lattice-surgery experiments with MergeSpec / MemorySpec,
//   - resolve a synchronization policy into a concrete schedule with
//     ComputePlan or SpecForPolicy,
//   - estimate logical error rates with NewPipeline,
//   - drive the runtime engine with NewEngine,
//   - simulate whole multi-patch programs with ParseTrace /
//     SimulateTrace,
//   - serve jobs from an embeddable queue server with a
//     content-addressed result store via NewService,
//   - join a coordinator's fleet as a pull-based execution node via
//     NewWorkerNode, and
//   - regenerate every table and figure of the paper via Experiments.
//
// See the examples directory for runnable walkthroughs and DESIGN.md for
// the system inventory.
package latticesim

import (
	"io"

	"latticesim/internal/circuit"
	"latticesim/internal/core"
	"latticesim/internal/decoder"
	"latticesim/internal/dem"
	"latticesim/internal/exp"
	"latticesim/internal/frame"
	"latticesim/internal/hardware"
	"latticesim/internal/microarch"
	"latticesim/internal/obs"
	"latticesim/internal/service"
	"latticesim/internal/surface"
	"latticesim/internal/sweep"
	"latticesim/internal/trace"
	"latticesim/internal/worker"
)

// Synchronization policies (§4 of the paper).
type Policy = core.Policy

// Policy values.
const (
	Ideal       = core.Ideal
	Passive     = core.Passive
	Active      = core.Active
	ActiveIntra = core.ActiveIntra
	ExtraRounds = core.ExtraRounds
	Hybrid      = core.Hybrid
)

// Core synchronization types.
type (
	// Params describes a two-patch synchronization problem.
	Params = core.Params
	// Plan is a resolved synchronization schedule.
	Plan = core.Plan
	// PatchState is a patch's runtime phase (cycle time + elapsed time).
	PatchState = core.PatchState
	// PairPlan is a pairwise synchronization directive.
	PairPlan = core.PairPlan
)

// ComputePlan derives the synchronization plan for a policy.
func ComputePlan(policy Policy, prm Params) Plan { return core.Compute(policy, prm) }

// SelectPolicy applies the runtime policy choice of §5.
func SelectPolicy(prm Params) Plan { return core.Select(prm) }

// SolveExtraRounds solves Eq. 1 (n·T_P′ = m·T_P + τ).
func SolveExtraRounds(tp, tpPrime, tau int64, maxM int) (m, n int, ok bool) {
	return core.SolveExtraRounds(tp, tpPrime, tau, maxM)
}

// SolveHybrid solves Eq. 2 (residual slack below ε after z extra rounds).
func SolveHybrid(tp, tpPrime, tau, eps int64, maxZ int) (z, n int, residualNs int64, ok bool) {
	return core.SolveHybrid(tp, tpPrime, tau, eps, maxZ)
}

// SynchronizeK synchronizes k patches pairwise against the slowest (§4.3).
func SynchronizeK(patches []PatchState, policy Policy, epsNs int64, maxZ int) []PairPlan {
	return core.SynchronizeK(patches, policy, epsNs, maxZ)
}

// Hardware platform configurations (Table 3).
type HardwareConfig = hardware.Config

// Platform constructors.
var (
	IBM        = hardware.IBM
	Google     = hardware.Google
	QuEra      = hardware.QuEra
	Sherbrooke = hardware.Sherbrooke
)

// Surface code experiment construction.
type (
	// Basis selects XX or ZZ lattice surgery.
	Basis = surface.Basis
	// MergeSpec configures a two-patch lattice surgery experiment.
	MergeSpec = surface.MergeSpec
	// MergeResult is the generated circuit plus metadata.
	MergeResult = surface.MergeResult
	// MemorySpec configures a single-patch memory experiment.
	MemorySpec = surface.MemorySpec
	// Circuit is the stabilizer-circuit IR (Stim-compatible text format).
	Circuit = circuit.Circuit
)

// Basis values.
const (
	BasisZ = surface.BasisZ
	BasisX = surface.BasisX
)

// Observable indices of merge experiments.
const (
	ObsJoint  = surface.ObsJoint
	ObsSingle = surface.ObsSingle
)

// SpecForPolicy resolves a policy into a runnable merge experiment.
func SpecForPolicy(d int, basis Basis, hw HardwareConfig, p float64, policy Policy,
	tauNs, cyclePNs, cyclePPrimeNs float64, epsNs int64) (MergeSpec, Plan, bool) {
	return exp.SpecForPolicy(d, basis, hw, p, policy, tauNs, cyclePNs, cyclePPrimeNs, epsNs)
}

// Decoding and sampling.
type (
	// Pipeline bundles sampler, detector error model and decoder. Its
	// Monte Carlo entry points shard shots across Pipeline.Workers
	// goroutines (default: all CPUs) with bit-identical results for any
	// worker count; see DESIGN.md §5. The inner loop executes a compiled
	// sampler plan with sparse syndrome extraction and zero-syndrome
	// decode skipping (DESIGN.md §9), bit-identical to interpretation.
	Pipeline = exp.Pipeline
	// LERResult reports logical error statistics.
	LERResult = exp.LERResult
	// DetectorErrorModel is the extracted error model.
	DetectorErrorModel = dem.Model
	// Decoder predicts observable flips from fired detectors.
	Decoder = decoder.Decoder
	// SamplerPlan is a compiled, immutable sampler execution plan: gate
	// layers fused, noise constants precomputed, annotations dropped.
	// Mint per-goroutine samplers from one shared plan with NewSampler.
	SamplerPlan = frame.Plan
	// FrameSampler samples detector/observable flips 64 shots at a time.
	FrameSampler = frame.Sampler
)

// NewPipeline builds the sample→DEM→decode pipeline for a circuit,
// including its compiled sampler plan.
func NewPipeline(c *Circuit) (*Pipeline, error) { return exp.NewPipeline(c) }

// CompileSampler lowers a circuit into a compiled sampler plan. The plan
// produces bit-identical samples to direct interpretation of the circuit
// and is safe to share across goroutines (each NewSampler owns private
// scratch).
func CompileSampler(c *Circuit) *SamplerPlan { return frame.Compile(c) }

// ExtractDEM computes the detector error model of a circuit.
func ExtractDEM(c *Circuit) *DetectorErrorModel { return dem.FromCircuit(c) }

// Runtime synchronization engine (Fig. 12).
type (
	// Engine is the synchronization engine with its patch tables.
	Engine = microarch.Engine
	// Schedule is a synchronized schedule for the QEC controller.
	Schedule = microarch.Schedule
)

// NewEngine creates a synchronization engine with the given patch
// capacity.
func NewEngine(capacity int) *Engine { return microarch.NewEngine(capacity) }

// Sweep campaigns: declarative parameter grids with cached build
// artifacts, machine-readable records and resumable manifests (the
// engine behind `latticesim sweep`; see EXPERIMENTS.md).
type (
	// SweepGrid declares a policies × distances × slacks × error rates ×
	// bases campaign.
	SweepGrid = sweep.Grid
	// SweepPoint is one concrete experiment of a campaign.
	SweepPoint = sweep.Point
	// SweepConfig carries campaign execution parameters.
	SweepConfig = sweep.Config
	// SweepAdaptive switches a campaign to adaptive shot allocation:
	// sequential stopping on confidence-interval width with budget
	// reallocation across points (EXPERIMENTS.md §12). Set it as
	// SweepConfig.Adaptive.
	SweepAdaptive = sweep.AdaptiveConfig
	// SweepRecord is the machine-readable result of one campaign point.
	SweepRecord = sweep.Record
	// SweepSummary reports what a campaign run did.
	SweepSummary = sweep.Summary
	// SweepCampaign binds a grid to its outputs (sinks, manifest, cache).
	SweepCampaign = sweep.Campaign
	// SweepSink receives completed records in canonical point order.
	SweepSink = sweep.Sink
	// BuildCache deduplicates circuit/DEM/decoder-graph artifacts across
	// campaign points, keyed by canonical spec hash.
	BuildCache = sweep.BuildCache
)

// NewBuildCache returns an empty artifact cache; share one across
// campaigns to deduplicate their common specs.
func NewBuildCache() *BuildCache { return sweep.NewBuildCache() }

// CollectSweep runs a grid in memory and returns its records in
// canonical point order. cache may be nil.
func CollectSweep(g SweepGrid, cfg SweepConfig, cache *BuildCache) ([]SweepRecord, error) {
	return sweep.Collect(g, cfg, cache)
}

// Trace-driven multi-patch simulation: whole lattice-surgery programs
// (PATCH/MERGE/IDLE traces) executed under a synchronization policy,
// with per-program timing breakdowns and Monte Carlo logical error
// rates (the engine behind `latticesim trace`; see DESIGN.md §10).
type (
	// TraceProgram is a parsed or generated lattice-surgery trace.
	TraceProgram = trace.Program
	// TracePatch declares one logical patch of a trace program.
	TracePatch = trace.PatchDecl
	// TraceOp is one MERGE or IDLE operation of a trace program.
	TraceOp = trace.Op
	// TraceConfig carries the physical and execution parameters of a
	// trace simulation; its zero value is runnable.
	TraceConfig = trace.Config
	// TraceResult is the per-policy outcome: runtime, idle/extra-round
	// breakdowns, and the program logical error rate.
	TraceResult = trace.Result
)

// ParseTrace reads a trace program from its text format.
func ParseTrace(r io.Reader) (*TraceProgram, error) { return trace.Parse(r) }

// ParseTraceString parses a trace program from a string.
func ParseTraceString(s string) (*TraceProgram, error) { return trace.ParseString(s) }

// SimulateTrace runs a program under one synchronization policy.
func SimulateTrace(prog *TraceProgram, policy Policy, cfg TraceConfig) (*TraceResult, error) {
	return trace.Simulate(prog, policy, cfg)
}

// SimulateTraceAll runs a program under each policy with one shared
// build cache.
func SimulateTraceAll(prog *TraceProgram, policies []Policy, cfg TraceConfig) ([]*TraceResult, error) {
	return trace.SimulateAll(prog, policies, cfg)
}

// Built-in trace workload families: a magic-state factory pipeline,
// uniformly random merges, and a Fig. 17-style cycle-time ensemble.
var (
	FactoryTrace  = trace.Factory
	RandomTrace   = trace.Random
	EnsembleTrace = trace.Ensemble
)

// TraceResultSet is the machine-readable result schema shared by
// `latticesim trace -json` and the simulation service's trace jobs.
type TraceResultSet = trace.ResultSet

// NewTraceResultSet assembles the machine-readable form of a trace
// simulation from its resolved config and per-policy results.
func NewTraceResultSet(prog *TraceProgram, cfg TraceConfig, source string, results []*TraceResult) TraceResultSet {
	return trace.NewResultSet(prog, cfg, source, results)
}

// Simulation service: an embeddable coordinator with a bounded job
// queue, a content-addressed result store, streaming progress, tenant
// admission control and a pull-based worker fleet (the engine behind
// `latticesim serve` / `latticesim submit` / `latticesim worker`; see
// API.md and DESIGN.md §11, §14, §15). Identical job submissions are
// served from the store bit-identically.
//
// Naming convention: every service-side type is Service*, every
// worker-node type is Worker*. Older names are kept as deprecated
// aliases for one release.
type (
	// Service is the embeddable simulation server: bounded job queue,
	// worker pool over one shared BuildCache, content-addressed store,
	// and the coordinator of the distributed campaign fabric.
	Service = service.Server
	// ServiceOptions configures a Service; the zero value works
	// (memory-only store, 2 workers). Set Workers negative for a pure
	// coordinator that leases all execution to remote worker nodes.
	ServiceOptions = service.Options
	// ServiceClient is the Go client of the service HTTP API.
	ServiceClient = service.Client
	// ServiceJob describes one job: a sweep point, a trace run, a batch
	// of sweep points, or a campaign over a sweep grid.
	ServiceJob = service.JobSpec
	// ServiceSweepJob configures a sweep-point job.
	ServiceSweepJob = service.SweepJob
	// ServiceTraceJob configures a trace-simulation job.
	ServiceTraceJob = service.TraceJob
	// ServiceBatchJob configures a batch job: a slice of sweep points
	// executed as one work unit (the leasing granularity of campaigns).
	ServiceBatchJob = service.BatchJob
	// ServiceCampaignJob configures a campaign: a sweep grid split into
	// batch children scheduled across the fleet and aggregated into one
	// result byte-identical to `latticesim sweep -json`.
	ServiceCampaignJob = service.CampaignJob
	// ServiceJobStatus is a job's queue state, progress and result key.
	ServiceJobStatus = service.JobStatus
	// ServiceCampaignStatus is a campaign's status with per-batch
	// detail.
	ServiceCampaignStatus = service.CampaignStatus
	// ServiceStats are the server's queue/fleet/store/build-cache
	// counters, including recovery counters (attempts, requeues,
	// cancellations, integrity checks, steals, quota rejections).
	ServiceStats = service.Stats
	// ServiceRetryPolicy configures client-side retries with jittered
	// exponential backoff; set it on ServiceClient.Retry.
	ServiceRetryPolicy = service.RetryPolicy
	// ServiceAttemptFailure is one recorded failed execution attempt in
	// a job's retry history (JobStatus.Failures).
	ServiceAttemptFailure = service.AttemptFailure
	// ServiceAPIError is the structured error every v1 endpoint returns
	// on failure: a stable machine-readable code, a human-readable
	// message, and an optional retry hint.
	ServiceAPIError = service.APIError
	// ServiceStatusError is the client-side error carrying the HTTP
	// status and decoded ServiceAPIError of a failed request; inspect
	// its code with ServiceErrorCode.
	ServiceStatusError = service.APIStatusError
	// ServiceQuotaError reports a tenant over its admission-control
	// quota (HTTP 429 with code "quota_exceeded" on the wire).
	ServiceQuotaError = service.QuotaError
	// ServiceStoreBackend is the result-store interface the service
	// runs on: the built-in disk/memory store or a ServiceRemoteStore
	// proxying another node's store over HTTP.
	ServiceStoreBackend = service.StoreBackend
	// ServiceRemoteStore is a StoreBackend reading and writing another
	// service's content-addressed store via its /v1/results API.
	ServiceRemoteStore = service.RemoteStore
	// ServiceWorkerInfo describes one registered fleet node
	// (GET /v1/workers).
	ServiceWorkerInfo = service.WorkerInfo
	// ServiceLeaseGrant is one leased work unit handed to a worker node.
	ServiceLeaseGrant = service.LeaseGrant
	// ServiceLeaseUpdate is a worker's report on a leased unit:
	// heartbeat, complete, or fail.
	ServiceLeaseUpdate = service.LeaseUpdate
)

// Deprecated aliases, kept for one release per the API.md deprecation
// policy.
type (
	// ServiceJobSpec describes one job.
	//
	// Deprecated: use ServiceJob.
	ServiceJobSpec = service.JobSpec
)

// NewService starts an embeddable simulation server; expose it over
// HTTP with its Handler method and stop it with Close.
func NewService(opts ServiceOptions) (*Service, error) { return service.New(opts) }

// NewServiceClient returns a client for the simulation service at base
// (e.g. "http://127.0.0.1:8642").
func NewServiceClient(base string) *ServiceClient { return service.NewClient(base) }

// NewServiceRemoteStore returns a StoreBackend proxying the
// content-addressed store of the service at base over its /v1/results
// API, using the default HTTP client.
func NewServiceRemoteStore(base string) *ServiceRemoteStore {
	return service.NewRemoteStore(base, nil)
}

// DefaultServiceRetryPolicy is the retry policy `latticesim submit
// -retry` uses: 5 retries, 100ms base delay, 5s cap, full jitter. It
// honors server retry hints (Retry-After / retry_after_ms) as backoff
// floors.
func DefaultServiceRetryPolicy() *ServiceRetryPolicy { return service.DefaultRetryPolicy() }

// ServiceErrorCode extracts the stable machine-readable error code
// ("quota_exceeded", "queue_full", ...) from an error returned by a
// ServiceClient, or "" if the error carries none.
func ServiceErrorCode(err error) string { return service.ErrorCode(err) }

// Worker fleet: pull-based execution nodes of the distributed campaign
// fabric (the engine behind `latticesim worker`; see DESIGN.md §15). A
// node registers with a coordinator, leases work units over HTTP,
// executes them with the same deterministic executors the coordinator
// uses, and reports results under the lease's fencing token.
type (
	// WorkerNode is one fleet node instance; construct with
	// NewWorkerNode and drive with Run.
	WorkerNode = worker.Worker
	// WorkerOptions configures a WorkerNode; Coordinator is required.
	WorkerOptions = worker.Options
	// WorkerStats counts a node's lifetime outcomes (leased, completed,
	// failed, abandoned).
	WorkerStats = worker.Stats
)

// NewWorkerNode builds a worker node for the coordinator named in
// opts; Run it with a context to join the fleet until canceled.
func NewWorkerNode(opts WorkerOptions) (*WorkerNode, error) { return worker.New(opts) }

// Observability: the dependency-free metrics registry, NDJSON span
// writer and structured logger behind GET /metrics, the
// X-Latticesim-Trace header and -log-json (DESIGN.md §16). Wire them
// into ServiceOptions / WorkerOptions, or serve MetricsRegistry's
// Handler from any HTTP mux.
type (
	// MetricsRegistry is a concurrency-safe Prometheus-text metric
	// registry (counters, gauges, histograms, labeled families).
	MetricsRegistry = obs.Registry
	// SpanWriter emits job/attempt/lease/unit trace spans as NDJSON.
	SpanWriter = obs.SpanWriter
	// SpanEvent is one NDJSON trace record (phase "start" or "end").
	SpanEvent = obs.SpanEvent
	// StructuredLogger writes leveled structured NDJSON log lines.
	StructuredLogger = obs.Logger
	// LogLevel orders structured log severities.
	LogLevel = obs.Level
)

// TraceIDHeader is the HTTP header that carries a job's trace ID:
// set it on submissions to join an existing trace, read it from
// submission responses and lease grants to follow one.
const TraceIDHeader = obs.TraceHeader

// NewMetricsRegistry returns an empty metric registry; expose it with
// its Handler method or WritePrometheus.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSpanWriter wraps w as a concurrency-safe NDJSON span sink (nil w
// yields a nil writer, which silently drops every event).
func NewSpanWriter(w io.Writer) *SpanWriter { return obs.NewSpanWriter(w) }

// NewStructuredLogger returns a leveled NDJSON logger writing events
// at or above min to w. It may share w with a SpanWriter: both emit
// whole lines in single Write calls.
func NewStructuredLogger(w io.Writer, min LogLevel) *StructuredLogger { return obs.NewLogger(w, min) }

// ParseLogLevel maps "debug", "info", "warn" or "error" to its
// LogLevel (unknown strings default to info).
func ParseLogLevel(s string) LogLevel { return obs.ParseLevel(s) }

// Experiments: regeneration of the paper's tables and figures.
type (
	// Experiment regenerates one table or figure.
	Experiment = exp.Experiment
	// Options scales experiments to available compute.
	Options = exp.Options
)

// Experiments returns the full experiment registry in paper order.
func Experiments() []Experiment { return exp.All() }

// RunExperiment runs one experiment by ID (e.g. "fig14", "table2").
func RunExperiment(id string, w io.Writer, o Options) error {
	e, ok := exp.ByID(id)
	if !ok {
		return errUnknownExperiment(id)
	}
	return e.Run(w, o)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "latticesim: unknown experiment " + string(e)
}
