// Package latticesim is a Go reproduction of "Synchronization for
// Fault-Tolerant Quantum Computers" (Maurya & Tannu, ISCA 2025): a
// stabilizer-circuit generator and sampler for surface code Lattice
// Surgery, together with the paper's synchronization policies (Passive,
// Active, Active-intra, Extra Rounds, Hybrid) and the control
// microarchitecture that applies them at runtime.
//
// The package is a facade over the internal implementation:
//
//   - build lattice-surgery experiments with MergeSpec / MemorySpec,
//   - resolve a synchronization policy into a concrete schedule with
//     ComputePlan or SpecForPolicy,
//   - estimate logical error rates with NewPipeline,
//   - drive the runtime engine with NewEngine,
//   - simulate whole multi-patch programs with ParseTrace /
//     SimulateTrace,
//   - serve jobs from an embeddable queue server with a
//     content-addressed result store via NewService, and
//   - regenerate every table and figure of the paper via Experiments.
//
// See the examples directory for runnable walkthroughs and DESIGN.md for
// the system inventory.
package latticesim

import (
	"io"

	"latticesim/internal/circuit"
	"latticesim/internal/core"
	"latticesim/internal/decoder"
	"latticesim/internal/dem"
	"latticesim/internal/exp"
	"latticesim/internal/frame"
	"latticesim/internal/hardware"
	"latticesim/internal/microarch"
	"latticesim/internal/service"
	"latticesim/internal/surface"
	"latticesim/internal/sweep"
	"latticesim/internal/trace"
)

// Synchronization policies (§4 of the paper).
type Policy = core.Policy

// Policy values.
const (
	Ideal       = core.Ideal
	Passive     = core.Passive
	Active      = core.Active
	ActiveIntra = core.ActiveIntra
	ExtraRounds = core.ExtraRounds
	Hybrid      = core.Hybrid
)

// Core synchronization types.
type (
	// Params describes a two-patch synchronization problem.
	Params = core.Params
	// Plan is a resolved synchronization schedule.
	Plan = core.Plan
	// PatchState is a patch's runtime phase (cycle time + elapsed time).
	PatchState = core.PatchState
	// PairPlan is a pairwise synchronization directive.
	PairPlan = core.PairPlan
)

// ComputePlan derives the synchronization plan for a policy.
func ComputePlan(policy Policy, prm Params) Plan { return core.Compute(policy, prm) }

// SelectPolicy applies the runtime policy choice of §5.
func SelectPolicy(prm Params) Plan { return core.Select(prm) }

// SolveExtraRounds solves Eq. 1 (n·T_P′ = m·T_P + τ).
func SolveExtraRounds(tp, tpPrime, tau int64, maxM int) (m, n int, ok bool) {
	return core.SolveExtraRounds(tp, tpPrime, tau, maxM)
}

// SolveHybrid solves Eq. 2 (residual slack below ε after z extra rounds).
func SolveHybrid(tp, tpPrime, tau, eps int64, maxZ int) (z, n int, residualNs int64, ok bool) {
	return core.SolveHybrid(tp, tpPrime, tau, eps, maxZ)
}

// SynchronizeK synchronizes k patches pairwise against the slowest (§4.3).
func SynchronizeK(patches []PatchState, policy Policy, epsNs int64, maxZ int) []PairPlan {
	return core.SynchronizeK(patches, policy, epsNs, maxZ)
}

// Hardware platform configurations (Table 3).
type HardwareConfig = hardware.Config

// Platform constructors.
var (
	IBM        = hardware.IBM
	Google     = hardware.Google
	QuEra      = hardware.QuEra
	Sherbrooke = hardware.Sherbrooke
)

// Surface code experiment construction.
type (
	// Basis selects XX or ZZ lattice surgery.
	Basis = surface.Basis
	// MergeSpec configures a two-patch lattice surgery experiment.
	MergeSpec = surface.MergeSpec
	// MergeResult is the generated circuit plus metadata.
	MergeResult = surface.MergeResult
	// MemorySpec configures a single-patch memory experiment.
	MemorySpec = surface.MemorySpec
	// Circuit is the stabilizer-circuit IR (Stim-compatible text format).
	Circuit = circuit.Circuit
)

// Basis values.
const (
	BasisZ = surface.BasisZ
	BasisX = surface.BasisX
)

// Observable indices of merge experiments.
const (
	ObsJoint  = surface.ObsJoint
	ObsSingle = surface.ObsSingle
)

// SpecForPolicy resolves a policy into a runnable merge experiment.
func SpecForPolicy(d int, basis Basis, hw HardwareConfig, p float64, policy Policy,
	tauNs, cyclePNs, cyclePPrimeNs float64, epsNs int64) (MergeSpec, Plan, bool) {
	return exp.SpecForPolicy(d, basis, hw, p, policy, tauNs, cyclePNs, cyclePPrimeNs, epsNs)
}

// Decoding and sampling.
type (
	// Pipeline bundles sampler, detector error model and decoder. Its
	// Monte Carlo entry points shard shots across Pipeline.Workers
	// goroutines (default: all CPUs) with bit-identical results for any
	// worker count; see DESIGN.md §5. The inner loop executes a compiled
	// sampler plan with sparse syndrome extraction and zero-syndrome
	// decode skipping (DESIGN.md §9), bit-identical to interpretation.
	Pipeline = exp.Pipeline
	// LERResult reports logical error statistics.
	LERResult = exp.LERResult
	// DetectorErrorModel is the extracted error model.
	DetectorErrorModel = dem.Model
	// Decoder predicts observable flips from fired detectors.
	Decoder = decoder.Decoder
	// SamplerPlan is a compiled, immutable sampler execution plan: gate
	// layers fused, noise constants precomputed, annotations dropped.
	// Mint per-goroutine samplers from one shared plan with NewSampler.
	SamplerPlan = frame.Plan
	// FrameSampler samples detector/observable flips 64 shots at a time.
	FrameSampler = frame.Sampler
)

// NewPipeline builds the sample→DEM→decode pipeline for a circuit,
// including its compiled sampler plan.
func NewPipeline(c *Circuit) (*Pipeline, error) { return exp.NewPipeline(c) }

// CompileSampler lowers a circuit into a compiled sampler plan. The plan
// produces bit-identical samples to direct interpretation of the circuit
// and is safe to share across goroutines (each NewSampler owns private
// scratch).
func CompileSampler(c *Circuit) *SamplerPlan { return frame.Compile(c) }

// ExtractDEM computes the detector error model of a circuit.
func ExtractDEM(c *Circuit) *DetectorErrorModel { return dem.FromCircuit(c) }

// Runtime synchronization engine (Fig. 12).
type (
	// Engine is the synchronization engine with its patch tables.
	Engine = microarch.Engine
	// Schedule is a synchronized schedule for the QEC controller.
	Schedule = microarch.Schedule
)

// NewEngine creates a synchronization engine with the given patch
// capacity.
func NewEngine(capacity int) *Engine { return microarch.NewEngine(capacity) }

// Sweep campaigns: declarative parameter grids with cached build
// artifacts, machine-readable records and resumable manifests (the
// engine behind `latticesim sweep`; see EXPERIMENTS.md).
type (
	// SweepGrid declares a policies × distances × slacks × error rates ×
	// bases campaign.
	SweepGrid = sweep.Grid
	// SweepPoint is one concrete experiment of a campaign.
	SweepPoint = sweep.Point
	// SweepConfig carries campaign execution parameters.
	SweepConfig = sweep.Config
	// SweepAdaptive switches a campaign to adaptive shot allocation:
	// sequential stopping on confidence-interval width with budget
	// reallocation across points (EXPERIMENTS.md §12). Set it as
	// SweepConfig.Adaptive.
	SweepAdaptive = sweep.AdaptiveConfig
	// SweepRecord is the machine-readable result of one campaign point.
	SweepRecord = sweep.Record
	// SweepSummary reports what a campaign run did.
	SweepSummary = sweep.Summary
	// SweepCampaign binds a grid to its outputs (sinks, manifest, cache).
	SweepCampaign = sweep.Campaign
	// SweepSink receives completed records in canonical point order.
	SweepSink = sweep.Sink
	// BuildCache deduplicates circuit/DEM/decoder-graph artifacts across
	// campaign points, keyed by canonical spec hash.
	BuildCache = sweep.BuildCache
)

// NewBuildCache returns an empty artifact cache; share one across
// campaigns to deduplicate their common specs.
func NewBuildCache() *BuildCache { return sweep.NewBuildCache() }

// CollectSweep runs a grid in memory and returns its records in
// canonical point order. cache may be nil.
func CollectSweep(g SweepGrid, cfg SweepConfig, cache *BuildCache) ([]SweepRecord, error) {
	return sweep.Collect(g, cfg, cache)
}

// Trace-driven multi-patch simulation: whole lattice-surgery programs
// (PATCH/MERGE/IDLE traces) executed under a synchronization policy,
// with per-program timing breakdowns and Monte Carlo logical error
// rates (the engine behind `latticesim trace`; see DESIGN.md §10).
type (
	// TraceProgram is a parsed or generated lattice-surgery trace.
	TraceProgram = trace.Program
	// TracePatch declares one logical patch of a trace program.
	TracePatch = trace.PatchDecl
	// TraceOp is one MERGE or IDLE operation of a trace program.
	TraceOp = trace.Op
	// TraceConfig carries the physical and execution parameters of a
	// trace simulation; its zero value is runnable.
	TraceConfig = trace.Config
	// TraceResult is the per-policy outcome: runtime, idle/extra-round
	// breakdowns, and the program logical error rate.
	TraceResult = trace.Result
)

// ParseTrace reads a trace program from its text format.
func ParseTrace(r io.Reader) (*TraceProgram, error) { return trace.Parse(r) }

// ParseTraceString parses a trace program from a string.
func ParseTraceString(s string) (*TraceProgram, error) { return trace.ParseString(s) }

// SimulateTrace runs a program under one synchronization policy.
func SimulateTrace(prog *TraceProgram, policy Policy, cfg TraceConfig) (*TraceResult, error) {
	return trace.Simulate(prog, policy, cfg)
}

// SimulateTraceAll runs a program under each policy with one shared
// build cache.
func SimulateTraceAll(prog *TraceProgram, policies []Policy, cfg TraceConfig) ([]*TraceResult, error) {
	return trace.SimulateAll(prog, policies, cfg)
}

// Built-in trace workload families: a magic-state factory pipeline,
// uniformly random merges, and a Fig. 17-style cycle-time ensemble.
var (
	FactoryTrace  = trace.Factory
	RandomTrace   = trace.Random
	EnsembleTrace = trace.Ensemble
)

// TraceResultSet is the machine-readable result schema shared by
// `latticesim trace -json` and the simulation service's trace jobs.
type TraceResultSet = trace.ResultSet

// NewTraceResultSet assembles the machine-readable form of a trace
// simulation from its resolved config and per-policy results.
func NewTraceResultSet(prog *TraceProgram, cfg TraceConfig, source string, results []*TraceResult) TraceResultSet {
	return trace.NewResultSet(prog, cfg, source, results)
}

// Simulation service: an embeddable job-queue server with a
// content-addressed result store and streaming progress (the engine
// behind `latticesim serve` / `latticesim submit`; see DESIGN.md §11).
// Identical job submissions are served from the store bit-identically.
type (
	// Service is the embeddable simulation server: bounded job queue,
	// worker pool over one shared BuildCache, content-addressed store.
	Service = service.Server
	// ServiceOptions configures a Service; the zero value works
	// (memory-only store, 2 workers).
	ServiceOptions = service.Options
	// ServiceClient is the Go client of the service HTTP API.
	ServiceClient = service.Client
	// ServiceJobSpec describes one job: a sweep point or a trace run.
	ServiceJobSpec = service.JobSpec
	// ServiceSweepJob configures a sweep-point job.
	ServiceSweepJob = service.SweepJob
	// ServiceTraceJob configures a trace-simulation job.
	ServiceTraceJob = service.TraceJob
	// ServiceJobStatus is a job's queue state, progress and result key.
	ServiceJobStatus = service.JobStatus
	// ServiceStats are the server's queue/store/build-cache counters,
	// including recovery counters (attempts, requeues, cancellations,
	// integrity checks).
	ServiceStats = service.Stats
	// ServiceRetryPolicy configures client-side retries with jittered
	// exponential backoff; set it on ServiceClient.Retry.
	ServiceRetryPolicy = service.RetryPolicy
	// ServiceAttemptFailure is one recorded failed execution attempt in
	// a job's retry history (JobStatus.Failures).
	ServiceAttemptFailure = service.AttemptFailure
)

// NewService starts an embeddable simulation server; expose it over
// HTTP with its Handler method and stop it with Close.
func NewService(opts ServiceOptions) (*Service, error) { return service.New(opts) }

// NewServiceClient returns a client for the simulation service at base
// (e.g. "http://127.0.0.1:8642").
func NewServiceClient(base string) *ServiceClient { return service.NewClient(base) }

// DefaultServiceRetryPolicy is the retry policy `latticesim submit
// -retry` uses: 5 retries, 100ms base delay, 5s cap, full jitter.
func DefaultServiceRetryPolicy() *ServiceRetryPolicy { return service.DefaultRetryPolicy() }

// Experiments: regeneration of the paper's tables and figures.
type (
	// Experiment regenerates one table or figure.
	Experiment = exp.Experiment
	// Options scales experiments to available compute.
	Options = exp.Options
)

// Experiments returns the full experiment registry in paper order.
func Experiments() []Experiment { return exp.All() }

// RunExperiment runs one experiment by ID (e.g. "fig14", "table2").
func RunExperiment(id string, w io.Writer, o Options) error {
	e, ok := exp.ByID(id)
	if !ok {
		return errUnknownExperiment(id)
	}
	return e.Run(w, o)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "latticesim: unknown experiment " + string(e)
}
