# Build, test and benchmark entry points. The bench targets feed the
# BENCH_*.json perf trajectory (see DESIGN.md §9 and cmd/benchjson).

GO ?= go

# bench pipes through tee; pipefail keeps a failing benchmark run fatal.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# Substrate microbenchmarks: sampling, extraction, decoding, end-to-end
# LER. Override BENCH to select others, BENCHTIME/COUNT for precision
# (COUNT>=10 for benchstat-grade confidence intervals).
BENCH ?= FrameSampling|Extraction|LUTDecode|UnionFindDecodeSteady|PredecodedDecode|PipelineRunLowP|PipelineRunWorkers
BENCHTIME ?= 2s
COUNT ?= 1
BENCH_OUT ?= bench.txt
BENCH_JSON ?= BENCH_pr7.json

.PHONY: build test race cover fuzz serve bench bench-json bench-compare diff diff-long chaos chaos-long obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# cover enforces the statement-coverage floors CI gates on (README
# "Contributing"): the statistics and allocation layers behind adaptive
# sweeps must stay ≥ $(COVER_FLOOR)% covered. The merged profile lands
# in coverage.out for the HTML viewer: go tool cover -html=coverage.out
COVER_FLOOR ?= 80
COVER_PKGS ?= ./internal/stats ./internal/sweep
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover "$$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p+0 >= f+0) }' \
			|| { echo "coverage floor violated: $$pkg at $$pct% < $(COVER_FLOOR)%"; exit 1; }; \
	done

# fuzz runs the grammar fuzzers for FUZZTIME each — the same smoke CI's
# lint job runs (30s there).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseTrace -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzParseGrid -fuzztime $(FUZZTIME) ./internal/sweep

# serve starts the simulation service (HTTP job queue + content-addressed
# result store under SERVE_DATA). Submit work with `latticesim submit`
# or plain curl; see DESIGN.md §11.
SERVE_ADDR ?= 127.0.0.1:8642
SERVE_DATA ?= serve-data
serve:
	$(GO) run ./cmd/latticesim serve -addr $(SERVE_ADDR) -data $(SERVE_DATA)

# bench writes benchstat-friendly raw output to $(BENCH_OUT); compare
# against the committed PR-7 numbers with
#   benchstat bench_baseline_pr7.txt bench.txt
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -count $(COUNT) . | tee $(BENCH_OUT)

# bench-json converts the raw output into the machine-readable perf
# record (ns/op, allocs/op, shots/s per benchmark), with the committed
# baseline embedded for before/after comparison.
bench-json: bench
	$(GO) run ./cmd/benchjson -in $(BENCH_OUT) -baseline bench_baseline_pr7.txt -out $(BENCH_JSON)

# bench-compare is the benchmark-regression gate CI runs: rerun the
# suite and fail when any shared benchmark's shots/s dropped more than
# TOLERANCE against the committed BASELINE_JSON (see README
# "Contributing" for how to refresh the baseline).
BASELINE_JSON ?= BENCH_pr7.json
TOLERANCE ?= 0.30
bench-compare: bench
	$(GO) run ./cmd/benchjson -in $(BENCH_OUT) -compare $(BASELINE_JSON) -tolerance $(TOLERANCE) -out /dev/null

# diff runs the differential harness's randomized suite (fixed seeds,
# trimmed trial counts) under the race detector — the same job CI runs on
# every push. diff-long removes -short for the full randomized sweep.
diff:
	$(GO) test -race -short -count 1 ./internal/testutil/diffharness

diff-long:
	$(GO) test -race -count 1 -timeout 30m ./internal/testutil/diffharness

# chaos runs the service-layer fault-injection suite (DESIGN.md §14)
# under the race detector: CHAOS_SCHEDULES seed-derived fault plans
# (crashed/wedged workers, torn store writes, dropped connections,
# random cancels), each asserting that every job terminates, completed
# results stay byte-identical to a fault-free run, and the queue leaks
# no slots. A failing schedule writes its replayable fault plan to
# CHAOS_ARTIFACT_DIR. chaos-long is the full "hundreds of schedules"
# sweep; CI runs the short form on every push.
CHAOS_SCHEDULES ?= 60
CHAOS_ARTIFACT_DIR ?= chaos-artifacts
chaos:
	CHAOS_SCHEDULES=$(CHAOS_SCHEDULES) CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) \
		$(GO) test -race -count 1 -run 'TestChaos' ./internal/service

chaos-long:
	CHAOS_SCHEDULES=300 CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) \
		$(GO) test -race -count 1 -timeout 60m -run 'TestChaos' ./internal/service

# obs-smoke drives the observability surface (DESIGN.md §16) end to end
# against a real two-node fleet: /metrics mid-campaign, a SIGKILL-forced
# lease expiry, one trace ID across coordinator and node span sinks,
# the status dashboard, and pprof. CI runs it in the fleet-smoke job.
obs-smoke:
	./scripts/obs-smoke.sh
